#include "cluster/scheduler.hpp"

#include <algorithm>
#include <queue>
#include <utility>

#include "util/status.hpp"

namespace sjc::cluster {

namespace {

/// Min-heap of (free-at time, slot id): among equally-free slots the lowest
/// slot id wins, so slot placement — and with it the trace timeline — is a
/// deterministic function of the task list alone. The slot id never feeds
/// into any duration arithmetic, so makespans are unchanged from the
/// time-only heap this replaces.
using SlotHeap =
    std::priority_queue<std::pair<double, std::uint32_t>,
                        std::vector<std::pair<double, std::uint32_t>>,
                        std::greater<>>;

SlotHeap make_slot_heap(std::uint32_t slots) {
  SlotHeap heap;
  for (std::uint32_t s = 0; s < slots; ++s) heap.emplace(0.0, s);
  return heap;
}

}  // namespace

double list_schedule_makespan(const std::vector<double>& durations,
                              std::uint32_t slots,
                              std::vector<ScheduledAttempt>* attempts_out) {
  require(slots > 0, "list_schedule_makespan: need at least one slot");
  if (durations.empty()) return 0.0;
  SlotHeap heap = make_slot_heap(slots);
  double makespan = 0.0;
  for (std::size_t i = 0; i < durations.size(); ++i) {
    const auto [start, slot] = heap.top();
    heap.pop();
    const double end = start + durations[i];
    makespan = std::max(makespan, end);
    heap.emplace(end, slot);
    if (attempts_out != nullptr) {
      attempts_out->push_back({i, 1, false, slot, start, end,
                               trace::SpanOutcome::kOk});
    }
  }
  return makespan;
}

double lpt_schedule_makespan(std::vector<double> durations, std::uint32_t slots) {
  require(slots > 0, "lpt_schedule_makespan: need at least one slot");
  std::sort(durations.begin(), durations.end(), std::greater<>());
  return list_schedule_makespan(durations, slots);
}

ScheduleOutcome list_schedule_makespan(const std::vector<double>& durations,
                                       std::uint32_t slots,
                                       const FaultInjector& faults,
                                       std::uint64_t phase,
                                       const std::vector<double>* intrinsic_severity,
                                       std::vector<ScheduledAttempt>* attempts_out,
                                       std::uint32_t slots_per_node) {
  require(slots > 0, "list_schedule_makespan: need at least one slot");
  require(intrinsic_severity == nullptr ||
              intrinsic_severity->size() == durations.size(),
          "list_schedule_makespan: severity vector must match task count");
  ScheduleOutcome out;
  if (durations.empty()) return out;

  const FaultPlan& plan = faults.plan();

  // ---- Node topology and quarantine state ---------------------------------
  const bool node_aware = slots_per_node > 0;
  const std::uint32_t num_nodes =
      node_aware ? (slots + slots_per_node - 1) / slots_per_node : 1;
  const auto node_of = [&](std::uint32_t slot) -> std::uint32_t {
    return node_aware ? slot / slots_per_node : 0;
  };
  const bool blacklisting =
      node_aware && plan.node_blacklist_threshold > 0 && num_nodes > 1;
  std::vector<std::uint32_t> node_failures(num_nodes, 0);
  std::vector<unsigned char> node_quarantined(num_nodes, 0);
  std::uint32_t live_nodes = num_nodes;

  // ---- Output-commit ledger -----------------------------------------------
  // Only the first committer per task publishes; any later commit for the
  // same task is rejected. A second *publish* would mean two attempts both
  // believed they won — the protocol's checked invariant.
  std::vector<unsigned char> published(durations.size(), 0);
  const auto publish = [&](std::size_t task) {
    if (published[task] != 0) {
      throw SjcError("commit protocol violation: task " + std::to_string(task) +
                     " output published twice");
    }
    published[task] = 1;
    ++out.commits_published;
  };
  const auto reject_commit = [&](std::size_t task) {
    if (published[task] == 0) {
      throw SjcError("commit protocol violation: task " + std::to_string(task) +
                     " commit rejected but no winner published");
    }
    ++out.commits_rejected;
  };

  // Median base duration, the speculation trigger reference (Hadoop
  // speculates on tasks far beyond the pack's progress rate).
  double median = 0.0;
  {
    std::vector<double> sorted = durations;
    const std::size_t mid = sorted.size() / 2;
    std::nth_element(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(mid),
                     sorted.end());
    median = sorted[mid];
  }

  SlotHeap heap = make_slot_heap(slots);

  // Lazy deletion: quarantined nodes' slots are dropped when they surface at
  // the top of the heap, never eagerly removed. With blacklisting off this
  // is a no-op and the heap behaves exactly as before.
  const auto prune = [&]() {
    while (blacklisting && !heap.empty() &&
           node_quarantined[node_of(heap.top().second)] != 0) {
      heap.pop();
    }
  };

  // Charge one failed attempt against `node`; returns true when this failure
  // tripped the blacklist threshold and quarantined the node. The last
  // healthy node is never quarantined — someone has to finish the phase.
  const auto charge_node_failure = [&](std::uint32_t node, double when) {
    if (!blacklisting) return false;
    ++node_failures[node];
    if (node_quarantined[node] == 0 &&
        node_failures[node] >= plan.node_blacklist_threshold && live_nodes > 1) {
      node_quarantined[node] = 1;
      --live_nodes;
      out.quarantines.push_back({node, when, node_failures[node]});
      return true;
    }
    return false;
  };

  const auto emit = [&](std::size_t task, std::uint32_t attempt, bool speculative,
                        std::uint32_t slot, double start, double end,
                        trace::SpanOutcome outcome) {
    if (attempts_out != nullptr) {
      attempts_out->push_back({task, attempt, speculative, slot, start, end, outcome});
    }
  };

  for (std::size_t i = 0; i < durations.size(); ++i) {
    const double base = durations[i];
    const double slow = faults.slowdown(phase, i);
    const double severity =
        intrinsic_severity != nullptr ? (*intrinsic_severity)[i] : 0.0;

    prune();
    auto [start, slot] = heap.top();
    heap.pop();
    std::uint32_t node = node_of(slot);

    // ---- Attempt chain: retries run back-to-back on the same slot, unless
    // the slot's node is quarantined mid-chain, in which case the chain
    // relocates to the earliest healthy slot. ------------------------------
    double chain = 0.0;
    bool succeeded = false;
    double final_attempt_start = start;  // where the winning attempt began
    std::uint32_t attempt = 1;
    for (; attempt <= plan.max_attempts; ++attempt) {
      const double attempt_duration = base * slow;
      ++out.attempts;
      out.max_attempts_used = std::max(out.max_attempts_used, attempt);
      if (severity > 1.0 && severity > faults.capacity_factor(attempt)) {
        // Intrinsic failure (pipe overflow): the attempt dies once the
        // capacity is exhausted, i.e. after capacity/severity of its work.
        const double consumed =
            attempt_duration * std::min(1.0, faults.capacity_factor(attempt) / severity);
        emit(i, attempt, false, slot, start + chain, start + chain + consumed,
             trace::SpanOutcome::kFailed);
        chain += consumed;
        out.wasted_seconds += consumed;
        ++out.attempts_aborted;
      } else if (faults.crashes_on(phase, i, attempt, node)) {
        const double consumed =
            attempt_duration * faults.crash_fraction(phase, i, attempt);
        emit(i, attempt, false, slot, start + chain, start + chain + consumed,
             trace::SpanOutcome::kFailed);
        chain += consumed;
        out.wasted_seconds += consumed;
        ++out.attempts_aborted;
      } else {
        final_attempt_start = start + chain;
        chain += attempt_duration;
        succeeded = true;
        break;
      }
      const double fail_end = start + chain;
      const bool newly_quarantined = charge_node_failure(node, fail_end);
      if (attempt < plan.max_attempts) {
        if (newly_quarantined) {
          // The node just got blacklisted out from under this retry chain:
          // relaunch on the earliest healthy slot, no sooner than the
          // failure was detected. The abandoned slot is not returned to
          // the heap — its node takes no further work this phase.
          prune();
          require(!heap.empty(), "scheduler: no healthy slots remain");
          const auto [healthy_free, healthy_slot] = heap.top();
          heap.pop();
          start = std::max(healthy_free, fail_end);
          chain = 0.0;
          slot = healthy_slot;
          node = node_of(slot);
        }
        const double backoff = faults.backoff_s(phase, i, attempt);
        chain += backoff;
        out.wasted_seconds += backoff;
      }
    }

    if (!succeeded) {
      out.success = false;
      if (out.first_failed_task == static_cast<std::size_t>(-1)) {
        out.first_failed_task = i;
      }
      const double end = start + chain;
      out.makespan = std::max(out.makespan, end);
      heap.emplace(end, slot);
      continue;
    }

    // ---- Speculative execution -------------------------------------------
    // Hadoop clones a straggler once it runs past a multiple of the pack's
    // median; the clone starts on another slot at full speed, the first
    // finisher wins and the loser is killed (its work wasted but charged).
    // Only clean first-attempt stragglers speculate: a task that already
    // crashed is handled by the retry path above. Both the winner and the
    // race loser reach the commit gate: the winner publishes first, the
    // loser's commit is rejected by the ledger — never double-published.
    const bool straggler = slow > 1.0 && attempt == 1;
    if (plan.speculative_execution && straggler &&
        base * slow > plan.speculation_threshold * median) {
      prune();
      if (!heap.empty()) {
        const double launch_offset = plan.speculation_threshold * median;
        const auto [clone_slot_free, clone_slot] = heap.top();
        heap.pop();
        const double clone_start = std::max(clone_slot_free, start + launch_offset);
        const double clone_end = clone_start + base;
        const double primary_end = start + chain;
        const double winner_end = std::min(primary_end, clone_end);
        ++out.speculative_clones;
        ++out.attempts;
        if (clone_end < primary_end) {
          out.wasted_seconds += winner_end - start;  // primary killed
          publish(i);        // clone wins the race and publishes
          reject_commit(i);  // primary finishes later; its commit bounces
          emit(i, attempt, false, slot, final_attempt_start, winner_end,
               trace::SpanOutcome::kSpeculativeLoser);
          emit(i, attempt + 1, true, clone_slot, clone_start, clone_end,
               trace::SpanOutcome::kOk);
        } else {
          out.wasted_seconds += std::max(0.0, winner_end - clone_start);  // clone killed
          publish(i);        // primary wins and publishes
          reject_commit(i);  // the clone's late commit is rejected
          emit(i, attempt, false, slot, final_attempt_start, primary_end,
               trace::SpanOutcome::kOk);
          emit(i, attempt + 1, true, clone_slot, clone_start,
               std::max(clone_start, winner_end), trace::SpanOutcome::kSpeculativeLoser);
        }
        out.makespan = std::max(out.makespan, winner_end);
        heap.emplace(winner_end, slot);
        heap.emplace(winner_end, clone_slot);
        continue;
      }
    }

    const double end = start + chain;
    publish(i);
    emit(i, attempt, false, slot, final_attempt_start, end, trace::SpanOutcome::kOk);
    out.makespan = std::max(out.makespan, end);
    heap.emplace(end, slot);
  }
  return out;
}

}  // namespace sjc::cluster
