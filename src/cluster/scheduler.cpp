#include "cluster/scheduler.hpp"

#include <algorithm>
#include <queue>

#include "util/status.hpp"

namespace sjc::cluster {

double list_schedule_makespan(const std::vector<double>& durations,
                              std::uint32_t slots) {
  require(slots > 0, "list_schedule_makespan: need at least one slot");
  if (durations.empty()) return 0.0;
  // Min-heap of slot availability times.
  std::priority_queue<double, std::vector<double>, std::greater<>> heap;
  for (std::uint32_t s = 0; s < slots; ++s) heap.push(0.0);
  double makespan = 0.0;
  for (const double d : durations) {
    const double start = heap.top();
    heap.pop();
    const double end = start + d;
    makespan = std::max(makespan, end);
    heap.push(end);
  }
  return makespan;
}

double lpt_schedule_makespan(std::vector<double> durations, std::uint32_t slots) {
  require(slots > 0, "lpt_schedule_makespan: need at least one slot");
  std::sort(durations.begin(), durations.end(), std::greater<>());
  return list_schedule_makespan(durations, slots);
}

ScheduleOutcome list_schedule_makespan(const std::vector<double>& durations,
                                       std::uint32_t slots,
                                       const FaultInjector& faults,
                                       std::uint64_t phase,
                                       const std::vector<double>* intrinsic_severity) {
  require(slots > 0, "list_schedule_makespan: need at least one slot");
  require(intrinsic_severity == nullptr ||
              intrinsic_severity->size() == durations.size(),
          "list_schedule_makespan: severity vector must match task count");
  ScheduleOutcome out;
  if (durations.empty()) return out;

  const FaultPlan& plan = faults.plan();

  // Median base duration, the speculation trigger reference (Hadoop
  // speculates on tasks far beyond the pack's progress rate).
  double median = 0.0;
  {
    std::vector<double> sorted = durations;
    const std::size_t mid = sorted.size() / 2;
    std::nth_element(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(mid),
                     sorted.end());
    median = sorted[mid];
  }

  std::priority_queue<double, std::vector<double>, std::greater<>> heap;
  for (std::uint32_t s = 0; s < slots; ++s) heap.push(0.0);

  for (std::size_t i = 0; i < durations.size(); ++i) {
    const double base = durations[i];
    const double slow = faults.slowdown(phase, i);
    const double severity =
        intrinsic_severity != nullptr ? (*intrinsic_severity)[i] : 0.0;

    const double start = heap.top();
    heap.pop();

    // ---- Attempt chain: retries run back-to-back on the same slot --------
    double chain = 0.0;
    bool succeeded = false;
    std::uint32_t attempt = 1;
    for (; attempt <= plan.max_attempts; ++attempt) {
      const double attempt_duration = base * slow;
      ++out.attempts;
      out.max_attempts_used = std::max(out.max_attempts_used, attempt);
      if (severity > 1.0 && severity > faults.capacity_factor(attempt)) {
        // Intrinsic failure (pipe overflow): the attempt dies once the
        // capacity is exhausted, i.e. after capacity/severity of its work.
        const double consumed =
            attempt_duration * std::min(1.0, faults.capacity_factor(attempt) / severity);
        chain += consumed;
        out.wasted_seconds += consumed;
      } else if (faults.crashes(phase, i, attempt)) {
        const double consumed =
            attempt_duration * faults.crash_fraction(phase, i, attempt);
        chain += consumed;
        out.wasted_seconds += consumed;
      } else {
        chain += attempt_duration;
        succeeded = true;
        break;
      }
      if (attempt < plan.max_attempts) {
        const double backoff = faults.backoff_s(attempt);
        chain += backoff;
        out.wasted_seconds += backoff;
      }
    }

    if (!succeeded) {
      out.success = false;
      if (out.first_failed_task == static_cast<std::size_t>(-1)) {
        out.first_failed_task = i;
      }
      const double end = start + chain;
      out.makespan = std::max(out.makespan, end);
      heap.push(end);
      continue;
    }

    // ---- Speculative execution -------------------------------------------
    // Hadoop clones a straggler once it runs past a multiple of the pack's
    // median; the clone starts on another slot at full speed, the first
    // finisher wins and the loser is killed (its work wasted but charged).
    // Only clean first-attempt stragglers speculate: a task that already
    // crashed is handled by the retry path above.
    const bool straggler = slow > 1.0 && attempt == 1;
    if (plan.speculative_execution && straggler &&
        base * slow > plan.speculation_threshold * median && !heap.empty()) {
      const double launch_offset = plan.speculation_threshold * median;
      const double clone_slot_free = heap.top();
      heap.pop();
      const double clone_start = std::max(clone_slot_free, start + launch_offset);
      const double clone_end = clone_start + base;
      const double primary_end = start + chain;
      const double winner_end = std::min(primary_end, clone_end);
      ++out.speculative_clones;
      ++out.attempts;
      if (clone_end < primary_end) {
        out.wasted_seconds += winner_end - start;  // primary killed
      } else {
        out.wasted_seconds += std::max(0.0, winner_end - clone_start);  // clone killed
      }
      out.makespan = std::max(out.makespan, winner_end);
      heap.push(winner_end);
      heap.push(winner_end);
      continue;
    }

    const double end = start + chain;
    out.makespan = std::max(out.makespan, end);
    heap.push(end);
  }
  return out;
}

}  // namespace sjc::cluster
