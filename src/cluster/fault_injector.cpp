#include "cluster/fault_injector.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "util/rng.hpp"
#include "util/status.hpp"

namespace sjc::cluster {

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  require(plan_.task_crash_probability >= 0.0 && plan_.task_crash_probability < 1.0,
          "FaultPlan: task_crash_probability must be in [0, 1)");
  require(plan_.straggler_probability >= 0.0 && plan_.straggler_probability <= 1.0,
          "FaultPlan: straggler_probability must be in [0, 1]");
  require(plan_.straggler_slowdown >= 1.0,
          "FaultPlan: straggler_slowdown must be >= 1");
  require(plan_.max_attempts >= 1, "FaultPlan: max_attempts must be >= 1");
  require(plan_.retry_backoff_s >= 0.0, "FaultPlan: retry_backoff_s must be >= 0");
  require(plan_.speculation_threshold >= 1.0,
          "FaultPlan: speculation_threshold must be >= 1");
  require(plan_.pipe_retry_headroom >= 0.0,
          "FaultPlan: pipe_retry_headroom must be >= 0");
  std::sort(plan_.datanode_losses.begin(), plan_.datanode_losses.end(),
            [](const DatanodeLossEvent& a, const DatanodeLossEvent& b) {
              return a.time_s != b.time_s ? a.time_s < b.time_s : a.node < b.node;
            });
}

std::uint64_t FaultInjector::phase_id(const std::string& name) {
  return std::hash<std::string>{}(name);
}

double FaultInjector::unit(std::uint64_t phase, std::size_t task,
                           std::uint32_t attempt, std::uint64_t salt) const {
  // One SplitMix64 chain over the query coordinates: order-independent,
  // allocation-free, and identical across thread schedules.
  std::uint64_t s = plan_.seed ^ 0x9e3779b97f4a7c15ULL;
  splitmix64(s);
  s ^= mix64(phase);
  s ^= mix64(static_cast<std::uint64_t>(task) * 0x2545f4914f6cdd1dULL + 1);
  s ^= mix64(static_cast<std::uint64_t>(attempt) + (salt << 32));
  const std::uint64_t bits = splitmix64(s);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

bool FaultInjector::crashes(std::uint64_t phase, std::size_t task,
                            std::uint32_t attempt) const {
  if (plan_.task_crash_probability <= 0.0) return false;
  return unit(phase, task, attempt, /*salt=*/1) < plan_.task_crash_probability;
}

double FaultInjector::crash_fraction(std::uint64_t phase, std::size_t task,
                                     std::uint32_t attempt) const {
  // Uniform in [0.05, 0.95]: a crash lands somewhere inside the attempt,
  // never exactly at launch or completion.
  return 0.05 + 0.9 * unit(phase, task, attempt, /*salt=*/2);
}

double FaultInjector::slowdown(std::uint64_t phase, std::size_t task) const {
  if (plan_.straggler_probability <= 0.0 || plan_.straggler_slowdown <= 1.0) {
    return 1.0;
  }
  return unit(phase, task, /*attempt=*/0, /*salt=*/3) < plan_.straggler_probability
             ? plan_.straggler_slowdown
             : 1.0;
}

double FaultInjector::backoff_s(std::uint32_t attempt) const {
  return plan_.retry_backoff_s * std::ldexp(1.0, static_cast<int>(attempt) - 1);
}

double FaultInjector::capacity_factor(std::uint32_t attempt) const {
  return 1.0 + plan_.pipe_retry_headroom * static_cast<double>(attempt - 1);
}

std::vector<DatanodeLossEvent> FaultInjector::losses_due(double now_s,
                                                         std::size_t from) const {
  std::vector<DatanodeLossEvent> due;
  for (std::size_t i = from; i < plan_.datanode_losses.size(); ++i) {
    if (plan_.datanode_losses[i].time_s > now_s) break;
    due.push_back(plan_.datanode_losses[i]);
  }
  return due;
}

}  // namespace sjc::cluster
