#include "cluster/fault_injector.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "util/rng.hpp"
#include "util/status.hpp"

namespace sjc::cluster {

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  require(plan_.task_crash_probability >= 0.0 && plan_.task_crash_probability < 1.0,
          "FaultPlan: task_crash_probability must be in [0, 1)");
  require(plan_.straggler_probability >= 0.0 && plan_.straggler_probability <= 1.0,
          "FaultPlan: straggler_probability must be in [0, 1]");
  require(plan_.straggler_slowdown >= 1.0,
          "FaultPlan: straggler_slowdown must be >= 1");
  require(plan_.max_attempts >= 1, "FaultPlan: max_attempts must be >= 1");
  require(plan_.retry_backoff_s >= 0.0, "FaultPlan: retry_backoff_s must be >= 0");
  require(plan_.max_backoff_s >= 0.0, "FaultPlan: max_backoff_s must be >= 0");
  require(plan_.backoff_jitter >= 0.0 && plan_.backoff_jitter <= 1.0,
          "FaultPlan: backoff_jitter must be in [0, 1]");
  require(plan_.bad_node_probability >= 0.0 && plan_.bad_node_probability <= 1.0,
          "FaultPlan: bad_node_probability must be in [0, 1]");
  require(plan_.bad_node_crash_probability >= 0.0 &&
              plan_.bad_node_crash_probability < 1.0,
          "FaultPlan: bad_node_crash_probability must be in [0, 1)");
  require(plan_.phase_timeout_s >= 0.0, "FaultPlan: phase_timeout_s must be >= 0");
  require(plan_.speculation_threshold >= 1.0,
          "FaultPlan: speculation_threshold must be >= 1");
  require(plan_.pipe_retry_headroom >= 0.0,
          "FaultPlan: pipe_retry_headroom must be >= 0");
  std::sort(plan_.datanode_losses.begin(), plan_.datanode_losses.end(),
            [](const DatanodeLossEvent& a, const DatanodeLossEvent& b) {
              return a.time_s != b.time_s ? a.time_s < b.time_s : a.node < b.node;
            });
}

std::uint64_t FaultInjector::phase_id(const std::string& name) {
  return std::hash<std::string>{}(name);
}

double FaultInjector::unit(std::uint64_t phase, std::size_t task,
                           std::uint32_t attempt, std::uint64_t salt) const {
  // One SplitMix64 chain over the query coordinates: order-independent,
  // allocation-free, and identical across thread schedules.
  std::uint64_t s = plan_.seed ^ 0x9e3779b97f4a7c15ULL;
  splitmix64(s);
  s ^= mix64(phase);
  s ^= mix64(static_cast<std::uint64_t>(task) * 0x2545f4914f6cdd1dULL + 1);
  s ^= mix64(static_cast<std::uint64_t>(attempt) + (salt << 32));
  const std::uint64_t bits = splitmix64(s);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

bool FaultInjector::crashes(std::uint64_t phase, std::size_t task,
                            std::uint32_t attempt) const {
  if (plan_.task_crash_probability <= 0.0) return false;
  return unit(phase, task, attempt, /*salt=*/1) < plan_.task_crash_probability;
}

double FaultInjector::crash_fraction(std::uint64_t phase, std::size_t task,
                                     std::uint32_t attempt) const {
  // Uniform in [0.05, 0.95]: a crash lands somewhere inside the attempt,
  // never exactly at launch or completion.
  return 0.05 + 0.9 * unit(phase, task, attempt, /*salt=*/2);
}

double FaultInjector::slowdown(std::uint64_t phase, std::size_t task) const {
  if (plan_.straggler_probability <= 0.0 || plan_.straggler_slowdown <= 1.0) {
    return 1.0;
  }
  return unit(phase, task, /*attempt=*/0, /*salt=*/3) < plan_.straggler_probability
             ? plan_.straggler_slowdown
             : 1.0;
}

bool FaultInjector::bad_node(std::uint32_t node) const {
  if (plan_.bad_node_probability <= 0.0) return false;
  // Node flakiness is a run-level property: hash only (seed, node) so the
  // same node misbehaves in every phase.
  return unit(/*phase=*/0x6e6f6465ULL, /*task=*/node, /*attempt=*/0,
              /*salt=*/5) < plan_.bad_node_probability;
}

bool FaultInjector::crashes_on(std::uint64_t phase, std::size_t task,
                               std::uint32_t attempt, std::uint32_t node) const {
  if (crashes(phase, task, attempt)) return true;
  if (plan_.bad_node_crash_probability <= 0.0 || !bad_node(node)) return false;
  // Fold the node into the task coordinate so the extra crash draw is
  // independent of the base draw and of other nodes' draws.
  const std::size_t coord =
      task ^ (static_cast<std::size_t>(node) * 0x9e3779b97f4a7c15ULL + 0x6b61);
  return unit(phase, coord, attempt, /*salt=*/6) < plan_.bad_node_crash_probability;
}

double FaultInjector::backoff_s(std::uint32_t attempt) const {
  return std::min(plan_.max_backoff_s,
                  plan_.retry_backoff_s * std::ldexp(1.0, static_cast<int>(attempt) - 1));
}

double FaultInjector::backoff_s(std::uint64_t phase, std::size_t task,
                                std::uint32_t attempt) const {
  const double base = backoff_s(attempt);
  if (plan_.backoff_jitter <= 0.0) return base;
  const double u = unit(phase, task, attempt, /*salt=*/4);
  return base * (1.0 - plan_.backoff_jitter + 2.0 * plan_.backoff_jitter * u);
}

double FaultInjector::capacity_factor(std::uint32_t attempt) const {
  return 1.0 + plan_.pipe_retry_headroom * static_cast<double>(attempt - 1);
}

std::vector<DatanodeLossEvent> FaultInjector::losses_due(double now_s,
                                                         std::size_t from) const {
  std::vector<DatanodeLossEvent> due;
  for (std::size_t i = from; i < plan_.datanode_losses.size(); ++i) {
    if (plan_.datanode_losses[i].time_s > now_s) break;
    due.push_back(plan_.datanode_losses[i]);
  }
  return due;
}

std::string describe(const FaultPlan& plan) {
  std::string out = "FaultPlan{seed=" + std::to_string(plan.seed);
  out += " crash_p=" + std::to_string(plan.task_crash_probability);
  out += " straggler_p=" + std::to_string(plan.straggler_probability);
  out += " straggler_x=" + std::to_string(plan.straggler_slowdown);
  out += " bad_node_p=" + std::to_string(plan.bad_node_probability);
  out += " bad_node_crash_p=" + std::to_string(plan.bad_node_crash_probability);
  out += " malformed_rows=" + std::to_string(plan.malformed_rows);
  out += " max_attempts=" + std::to_string(plan.max_attempts);
  out += " backoff_s=" + std::to_string(plan.retry_backoff_s);
  out += " max_backoff_s=" + std::to_string(plan.max_backoff_s);
  out += " jitter=" + std::to_string(plan.backoff_jitter);
  out += " blacklist_threshold=" + std::to_string(plan.node_blacklist_threshold);
  out += " retry_budget=" + std::to_string(plan.job_retry_budget);
  out += " phase_timeout_s=" + std::to_string(plan.phase_timeout_s);
  out += " speculative=" + std::string(plan.speculative_execution ? "1" : "0");
  out += " spec_threshold=" + std::to_string(plan.speculation_threshold);
  out += " pipe_headroom=" + std::to_string(plan.pipe_retry_headroom);
  out += " losses=[";
  for (std::size_t i = 0; i < plan.datanode_losses.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(plan.datanode_losses[i].time_s) + "s@node" +
           std::to_string(plan.datanode_losses[i].node);
  }
  out += "]}";
  return out;
}

}  // namespace sjc::cluster
