#include "cluster/cluster_spec.hpp"

namespace sjc::cluster {

namespace {
constexpr std::uint64_t kGiB = 1024ULL * 1024ULL * 1024ULL;
constexpr double kMiBps = 1024.0 * 1024.0;
}  // namespace

ClusterSpec ClusterSpec::workstation() {
  return ClusterSpec{
      .name = "WS",
      .node =
          NodeSpec{
              .cores = 16,
              .memory_bytes = 128 * kGiB,
              // One SATA/early-SAS array shared by all 16 slots: the paper
              // explains the small WS speedup of SpatialSpark on taxi-nycb
              // by single-node disk bandwidth saturation.
              .disk_read_bw = 160.0 * kMiBps,
              .disk_write_bw = 120.0 * kMiBps,
              // Loopback: shuffles on a single node never cross a NIC.
              .network_bw = 8192.0 * kMiBps,
              .cpu_speed = 1.0,
          },
      .node_count = 1,
  };
}

ClusterSpec ClusterSpec::ec2(std::uint32_t nodes) {
  return ClusterSpec{
      .name = "EC2-" + std::to_string(nodes),
      .node =
          NodeSpec{
              .cores = 8,
              .memory_bytes = 15 * kGiB,
              .disk_read_bw = 150.0 * kMiBps,
              .disk_write_bw = 120.0 * kMiBps,
              .network_bw = 120.0 * kMiBps,  // ~1 Gbps
              .cpu_speed = 0.9,
          },
      .node_count = nodes,
  };
}

}  // namespace sjc::cluster
