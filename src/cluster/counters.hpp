// Hadoop-style named counters.
//
// Jobs accumulate counts (records read, duplicates removed, candidate
// pairs, refined pairs) that the paper's analysis reasons about
// qualitatively; counters make them measurable per run. Thread-safe:
// tasks on the pool increment concurrently.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace sjc::cluster {

class Counters {
 public:
  Counters() = default;
  // Copy/move transfer the current values (the mutex itself is not
  // movable); concurrent mutation during a move is a caller bug.
  Counters(const Counters& other) : values_(other.snapshot()) {}
  Counters(Counters&& other) noexcept : values_(other.snapshot()) {}
  Counters& operator=(const Counters& other) {
    if (this != &other) {
      auto theirs = other.snapshot();
      std::lock_guard<std::mutex> lock(mutex_);
      values_ = std::move(theirs);
    }
    return *this;
  }
  Counters& operator=(Counters&& other) noexcept { return *this = other; }

  void add(const std::string& name, std::uint64_t delta) {
    std::lock_guard<std::mutex> lock(mutex_);
    values_[name] += delta;
  }

  std::uint64_t get(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = values_.find(name);
    return it == values_.end() ? 0 : it->second;
  }

  std::map<std::string, std::uint64_t> snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return values_;
  }

  void merge(const Counters& other) {
    const auto theirs = other.snapshot();
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, value] : theirs) values_[name] += value;
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t> values_;
};

}  // namespace sjc::cluster
