#include "core/local_join.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace sjc::core {

geom::Coord reference_point(const geom::Envelope& a, const geom::Envelope& b) {
  return {std::max(a.min_x(), b.min_x()), std::max(a.min_y(), b.min_y())};
}

bool evaluate_predicate(const geom::GeometryEngine& engine, JoinPredicate predicate,
                        double within_distance, const geom::Geometry& left,
                        const geom::Geometry& right) {
  switch (predicate) {
    case JoinPredicate::kIntersects:
      return engine.intersects(left, right);
    case JoinPredicate::kWithin:
      return engine.contains(right, left);
    case JoinPredicate::kWithinDistance:
      return engine.distance(left, right) <= within_distance;
  }
  throw InvalidArgument("evaluate_predicate: unknown predicate");
}

void run_local_join(
    std::span<const geom::Feature> left, std::span<const geom::Feature> right,
    const LocalJoinSpec& spec,
    const std::function<bool(const geom::Envelope&, const geom::Envelope&)>& accept,
    std::vector<JoinPair>& out) {
  LocalJoinScratch scratch;
  if (accept) {
    run_local_join(
        left, right, spec,
        [&accept](const geom::Envelope& a, const geom::Envelope& b) {
          return accept(a, b);
        },
        scratch, out);
  } else {
    run_local_join(left, right, spec, AcceptAllPairs{}, scratch, out);
  }
}

}  // namespace sjc::core
