#include "core/local_join.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace sjc::core {

geom::Coord reference_point(const geom::Envelope& a, const geom::Envelope& b) {
  return {std::max(a.min_x(), b.min_x()), std::max(a.min_y(), b.min_y())};
}

bool evaluate_predicate(const geom::GeometryEngine& engine, JoinPredicate predicate,
                        double within_distance, const geom::Geometry& left,
                        const geom::Geometry& right) {
  switch (predicate) {
    case JoinPredicate::kIntersects:
      return engine.intersects(left, right);
    case JoinPredicate::kWithin:
      return engine.contains(right, left);
    case JoinPredicate::kWithinDistance:
      return engine.distance(left, right) <= within_distance;
  }
  throw InvalidArgument("evaluate_predicate: unknown predicate");
}

void run_local_join(
    std::span<const geom::Feature> left, std::span<const geom::Feature> right,
    const LocalJoinSpec& spec,
    const std::function<bool(const geom::Envelope&, const geom::Envelope&)>& accept,
    std::vector<JoinPair>& out) {
  if (left.empty() || right.empty()) return;

  // Filter phase: MBR join over local indices (epsilon-expanded for
  // within-distance joins).
  const double expand = spec.envelope_expansion();
  std::vector<index::IndexEntry> left_entries;
  std::vector<index::IndexEntry> right_entries;
  left_entries.reserve(left.size());
  right_entries.reserve(right.size());
  for (std::uint32_t i = 0; i < left.size(); ++i) {
    left_entries.push_back({left[i].geometry.envelope().expanded_by(expand), i});
  }
  for (std::uint32_t i = 0; i < right.size(); ++i) {
    right_entries.push_back({right[i].geometry.envelope().expanded_by(expand), i});
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> candidates;  // (right, left)
  index::local_mbr_join(spec.algorithm, left_entries, right_entries,
                        [&candidates](std::uint32_t l, std::uint32_t r) {
                          candidates.emplace_back(r, l);
                        });
  if (candidates.empty()) return;

  // Group candidates by the right-side feature so each right geometry is
  // bound (prepared) exactly once.
  std::sort(candidates.begin(), candidates.end());

  std::size_t i = 0;
  while (i < candidates.size()) {
    const std::uint32_t r = candidates[i].first;
    const auto& right_feature = right[r];
    const auto bound = spec.engine->bind(right_feature.geometry);
    while (i < candidates.size() && candidates[i].first == r) {
      const std::uint32_t l = candidates[i].second;
      const auto& left_feature = left[l];
      ++i;
      // The accept filter sees the same (expanded) envelopes used for
      // partition assignment so reference-point dedup stays consistent.
      if (accept && !accept(left_feature.geometry.envelope().expanded_by(expand),
                            right_feature.geometry.envelope().expanded_by(expand))) {
        continue;
      }
      bool hit = false;
      switch (spec.predicate) {
        case JoinPredicate::kIntersects:
          hit = bound->intersects(left_feature.geometry);
          break;
        case JoinPredicate::kWithin:
          hit = bound->contains(left_feature.geometry);
          break;
        case JoinPredicate::kWithinDistance:
          hit = bound->within_distance(left_feature.geometry, spec.within_distance);
          break;
      }
      if (hit) out.push_back({left_feature.id, right_feature.id});
    }
  }
}

}  // namespace sjc::core
