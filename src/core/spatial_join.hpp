// Public facade of the library: distributed spatial join queries against
// simulated Cloud systems.
//
// Usage:
//   auto report = sjc::core::run_spatial_join(
//       sjc::core::SystemKind::kSpatialSparkSim, left, right, query, exec);
//   if (report.success) { ... report.join_seconds ... }
//
// The three SystemKind values correspond to the paper's three systems; each
// executes the full three-stage pipeline (preprocess / global join / local
// join, Fig. 1) on its own substrate and returns the paper's measurement
// breakdown (IA / IB / DJ / TOT) plus full per-phase metrics.
#pragma once

#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster_spec.hpp"
#include "cluster/counters.hpp"
#include "cluster/metrics.hpp"
#include "trace/trace.hpp"
#include "util/status.hpp"
#include "geom/engine.hpp"
#include "index/mbr_join.hpp"
#include "partition/partitioner.hpp"
#include "workload/dataset.hpp"

namespace sjc::core {

enum class SystemKind {
  kHadoopGisSim = 0,     // Hadoop Streaming + slow (GEOS-analog) geometry
  kSpatialHadoopSim = 1, // native Hadoop + fast (JTS-analog) geometry
  kSpatialSparkSim = 2,  // RDD engine + fast (JTS-analog) geometry
};

const char* system_kind_name(SystemKind kind);

enum class JoinPredicate {
  /// Exact-geometry intersection (the paper's polyline x polyline join).
  kIntersects = 0,
  /// Right covers left — point-in-polygon when the left side is points (the
  /// paper's taxi x census-block join).
  kWithin = 1,
  /// distance(left, right) <= d (the paper's motivating
  /// point-to-nearest-road example, included as an extension).
  kWithinDistance = 2,
};

const char* join_predicate_name(JoinPredicate predicate);

struct JoinPair {
  std::uint64_t left_id = 0;
  std::uint64_t right_id = 0;

  friend bool operator==(const JoinPair&, const JoinPair&) = default;
  friend bool operator<(const JoinPair& a, const JoinPair& b) {
    return a.left_id != b.left_id ? a.left_id < b.left_id : a.right_id < b.right_id;
  }
};

/// Order-independent digest of a pair set; equal pair sets hash equal, so
/// the three systems can be cross-validated without materializing pairs.
std::uint64_t hash_pairs_unordered(const std::vector<JoinPair>& pairs);

struct JoinQueryConfig {
  JoinPredicate predicate = JoinPredicate::kIntersects;
  double within_distance = 0.0;  // used by kWithinDistance

  /// Target partition cells; 0 = 2 cells per cluster slot.
  std::uint32_t target_partitions = 0;
  /// Sample rate used to derive partition boundaries.
  double sample_rate = 0.01;
  /// Partitioning strategy for sampled boundaries.
  partition::PartitionerKind partitioner = partition::PartitionerKind::kStr;
  /// Local (per partition pair) MBR join algorithm override. When empty,
  /// each system uses its paper configuration: plane-sweep for
  /// SpatialHadoop, dynamic-R-tree nested loop for HadoopGIS, STR-indexed
  /// nested loop for SpatialSpark.
  std::optional<index::LocalJoinAlgorithm> local_algorithm;
  std::uint64_t seed = 7;
};

struct ExecutionConfig {
  cluster::ClusterSpec cluster = cluster::ClusterSpec::workstation();
  /// paper records / generated records (1/workload scale); all simulated
  /// times and capacities are expressed at paper magnitude through this.
  double data_scale = 1000.0;
  /// Keep the joined (left_id, right_id) pairs in the report (tests); when
  /// false only count and hash are kept (benches).
  bool collect_pairs = false;
  /// Collect a per-task trace timeline (RunReport::trace): one TaskSpan per
  /// scheduled attempt, exportable as Chrome trace.json. Tracing is
  /// accounting-neutral — under virtual time a traced run's report is
  /// bit-identical to an untraced one.
  bool trace = false;
};

struct RunReport {
  bool success = false;
  std::string failure_reason;  // e.g. "broken pipe ...", "out of memory ..."
  /// Structured failure class: Ok on success, else the Status mapped from
  /// the SimFailure/SjcError that killed the run (status_from_exception).
  /// Harnesses branch on status.code() instead of string-matching
  /// failure_reason; bench binaries print status.to_string() as the
  /// one-line diagnosis.
  sjc::Status status;

  /// Total task attempts launched across all phases (retries and
  /// speculative clones included); equals the task count on a clean run.
  std::uint64_t attempts_used = 0;
  /// True when the run succeeded but only through recovery work: task
  /// retries, speculative clones, lineage recomputes or DFS re-replication.
  bool recovered = false;

  /// The paper's Table 3 breakdown (seconds at paper magnitude). For the
  /// SpatialSpark analog only `total_seconds` is meaningful, matching the
  /// paper's note that Spark stages cannot be attributed cleanly.
  double index_a_seconds = std::nan("");
  double index_b_seconds = std::nan("");
  double join_seconds = std::nan("");
  double total_seconds = std::nan("");

  std::size_t result_count = 0;
  std::uint64_t result_hash = 0;
  std::vector<JoinPair> pairs;  // filled when ExecutionConfig::collect_pairs

  /// Peak executor working set at paper magnitude (SpatialSpark analog
  /// only; 0 otherwise). Drives the OOM analysis in EXPERIMENTS.md.
  std::uint64_t peak_memory_bytes = 0;

  cluster::RunMetrics metrics;  // full per-phase detail

  /// Per-attempt timeline (empty unless ExecutionConfig::trace): exported
  /// via trace::write_chrome_trace / summarized via trace::skew_summary.
  trace::TaskTimeline trace;

  /// Hadoop-style named counters accumulated by the run (records assigned,
  /// duplicates removed, candidate vs refined pairs, ...).
  cluster::Counters counters;
};

/// Partition-cell count actually used for a query: the explicit target, or
/// max(128, 2 x cluster slots). The floor keeps single hot cells (downtown
/// taxi hotspots) from dominating a wave, mirroring the many-partitions
/// configuration of the real systems (64 MB HDFS blocks / hundreds of RDD
/// partitions).
std::uint32_t effective_target_partitions(const JoinQueryConfig& query,
                                          const cluster::ClusterSpec& cluster);

/// Sample rate actually used when deriving partitions from a dataset of
/// `dataset_size` records: at least the configured rate, raised so the
/// expected sample holds ~4 points per target cell (partitioners degenerate
/// on near-empty samples — a scale artifact the real systems avoid by
/// sampling fixed counts).
double effective_sample_rate(double configured_rate, std::size_t dataset_size,
                             std::uint32_t target_cells);

/// Fills a report's recovery summary (`attempts_used`, `recovered`) from
/// its accumulated phase metrics. Called by every system driver after the
/// run; idempotent.
void annotate_recovery(RunReport& report);

/// Runs one distributed spatial join on the chosen system. Simulated
/// failures (BrokenPipe, TaskFailed, BlockUnavailable, SimOutOfMemory) are
/// captured in the report; other exceptions (bugs, bad arguments)
/// propagate.
RunReport run_spatial_join(SystemKind system, const workload::Dataset& left,
                           const workload::Dataset& right, const JoinQueryConfig& query,
                           const ExecutionConfig& exec);

}  // namespace sjc::core
