// Registry of the paper's experiments (workload x predicate pairs), shared
// by the benchmark binaries and EXPERIMENTS.md.
//
// Table 2 (full datasets):   taxi x nycb (point-in-polygon / within),
//                            edges x linearwater (polyline intersection).
// Table 3 (sample datasets): taxi1m x nycb, edges0.1 x linearwater0.1.
#pragma once

#include <string>
#include <vector>

#include "core/spatial_join.hpp"
#include "workload/generators.hpp"

namespace sjc::core {

struct ExperimentDef {
  std::string id;  // the paper's row label, e.g. "taxi-nycb"
  workload::DatasetId left;
  workload::DatasetId right;
  JoinPredicate predicate;
};

/// The two full-dataset experiments of Table 2, in paper order.
const std::vector<ExperimentDef>& full_experiments();

/// The two sample-dataset experiments of Table 3, in paper order.
const std::vector<ExperimentDef>& sample_experiments();

/// The four cluster configurations of Table 2, in paper order
/// (WS, EC2-10, EC2-8, EC2-6).
std::vector<cluster::ClusterSpec> paper_cluster_configs();

/// Reads the bench-wide workload scale: SJC_SCALE env var (fraction of the
/// paper's record counts), defaulting to `fallback`.
double bench_scale(double fallback = 1e-3);

}  // namespace sjc::core
