// Zero-copy feature views for the partition/shuffle data plane.
//
// The simulator charges data movement twice today: once as *modeled* bytes
// (pair_bytes / memory_bytes — correct, that is the paper's cost) and once
// as real deep copies of geom::Feature variants with nested coordinate
// vectors (pure harness overhead the JVM systems never pay, since their
// serialized record bytes are already what the model charges). These views
// let partition blocks and RDD shuffle payloads carry indices/pointers into
// a stable feature store while MemoryManager and the MR cost model keep
// charging the full modeled record sizes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/geometry.hpp"

namespace sjc::core {

/// A reference to one feature in a stable backing store (a Dataset's feature
/// vector, or a parsed-RDD feature store kept alive for the run). Shuffle
/// payloads ship this 8-byte handle; modeled byte sizers keep charging the
/// referenced record's full serialized size.
struct FeatureRef {
  const geom::Feature* feature = nullptr;

  const geom::Feature& get() const { return *feature; }
};

/// A sequence view `base[indices[i]]` presenting a partition block's members
/// as a random-access feature range without materializing copies. Satisfies
/// the sequence shape run_local_join templates over (size / empty /
/// operator[] -> const Feature&).
class FeatureIndexSpan {
 public:
  FeatureIndexSpan() = default;
  FeatureIndexSpan(std::span<const geom::Feature> base,
                   std::span<const std::uint32_t> indices)
      : base_(base), indices_(indices) {}

  std::size_t size() const { return indices_.size(); }
  bool empty() const { return indices_.empty(); }
  const geom::Feature& operator[](std::size_t i) const { return base_[indices_[i]]; }

 private:
  std::span<const geom::Feature> base_;
  std::span<const std::uint32_t> indices_;
};

/// A sequence view over FeatureRef handles (the RDD shuffle payload type)
/// that dereferences to the backing features, for feeding run_local_join
/// without gathering copies.
class FeatureRefSpan {
 public:
  FeatureRefSpan() = default;
  explicit FeatureRefSpan(std::span<const FeatureRef> refs) : refs_(refs) {}

  std::size_t size() const { return refs_.size(); }
  bool empty() const { return refs_.empty(); }
  const geom::Feature& operator[](std::size_t i) const { return refs_[i].get(); }

 private:
  std::span<const FeatureRef> refs_;
};

}  // namespace sjc::core
