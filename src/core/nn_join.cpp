#include "core/nn_join.hpp"

#include "index/nearest.hpp"
#include "index/str_tree.hpp"

namespace sjc::core {

std::vector<NnMatch> nearest_neighbor_join(std::span<const geom::Feature> left,
                                           std::span<const geom::Feature> right,
                                           const geom::GeometryEngine& engine) {
  std::vector<NnMatch> out;
  if (left.empty() || right.empty()) return out;

  std::vector<index::IndexEntry> entries;
  entries.reserve(right.size());
  for (std::uint32_t i = 0; i < right.size(); ++i) {
    entries.push_back({right[i].geometry.envelope(), i});
  }
  const index::StrTree tree(std::move(entries));

  out.reserve(left.size());
  for (const auto& lf : left) {
    const auto hit = index::nearest_exact(
        tree, lf.geometry.envelope(), [&](std::uint32_t rid) {
          return engine.distance(lf.geometry, right[rid].geometry);
        });
    out.push_back({lf.id, right[hit.id].id, hit.distance});
  }
  return out;
}

}  // namespace sjc::core
