// Local join: the per-partition-pair filter + refinement shared by all
// three systems (Section II.C).
//
// Within one partition pair the systems differ only in the MBR-join
// algorithm (plane sweep / synchronized R-tree traversal / indexed nested
// loop) and in the geometry engine used for refinement (Simple vs
// Prepared). run_local_join factors the common shape: MBR-join the two
// feature lists, group candidates by the right-side feature, bind that
// feature once on the engine (the JTS PreparedGeometry access pattern) and
// evaluate the exact predicate per candidate.
//
// Duplicate avoidance: partitions overlap-assign features, so the same
// (left, right) pair can meet in several partition pairs. The caller
// supplies an `accept` filter — typically the reference-point test
// (`reference_point` below + "is this cell the canonical cell"), or
// nullptr to keep everything and deduplicate globally (HadoopGIS-style).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/spatial_join.hpp"
#include "geom/engine.hpp"
#include "index/mbr_join.hpp"
#include "workload/dataset.hpp"

namespace sjc::core {

struct LocalJoinSpec {
  index::LocalJoinAlgorithm algorithm = index::LocalJoinAlgorithm::kIndexedNestedLoop;
  const geom::GeometryEngine* engine = &geom::GeometryEngine::prepared();
  JoinPredicate predicate = JoinPredicate::kIntersects;
  double within_distance = 0.0;

  /// Envelope expansion applied to BOTH sides throughout the pipeline
  /// (partition assignment, MBR filter, reference point) for epsilon
  /// (within-distance) joins: expanding each side by d/2 guarantees that
  /// any pair within distance d has intersecting expanded envelopes.
  double envelope_expansion() const {
    return predicate == JoinPredicate::kWithinDistance ? within_distance / 2.0 : 0.0;
  }
};

/// Top-left corner of the two envelopes' intersection: the canonical point
/// for duplicate avoidance (identical in every partition pair where the two
/// features meet).
geom::Coord reference_point(const geom::Envelope& a, const geom::Envelope& b);

/// Joins `left` x `right` within one partition; appends accepted pairs to
/// `out`. `accept(pair, left_env, right_env)` may be empty (keep all).
void run_local_join(
    std::span<const geom::Feature> left, std::span<const geom::Feature> right,
    const LocalJoinSpec& spec,
    const std::function<bool(const geom::Envelope&, const geom::Envelope&)>& accept,
    std::vector<JoinPair>& out);

/// Exact predicate evaluation used by the refinement step (and by tests).
bool evaluate_predicate(const geom::GeometryEngine& engine, JoinPredicate predicate,
                        double within_distance, const geom::Geometry& left,
                        const geom::Geometry& right);

}  // namespace sjc::core
