// Local join: the per-partition-pair filter + refinement shared by all
// three systems (Section II.C).
//
// Within one partition pair the systems differ only in the MBR-join
// algorithm (plane sweep / synchronized R-tree traversal / indexed nested
// loop) and in the geometry engine used for refinement (Simple vs
// Prepared). run_local_join factors the common shape: MBR-join the two
// feature lists, group candidates by the right-side feature, bind that
// feature once on the engine (the JTS PreparedGeometry access pattern) and
// evaluate the exact predicate per candidate.
//
// The hot path is the templated run_local_join overload: the MBR-join sink
// and the accept filter inline into the kernel loops, candidate grouping is
// a counting-sort scatter (right ids are dense) instead of a comparison
// sort, expanded envelopes are computed once per feature, and a caller-owned
// LocalJoinScratch keeps entry buffers and per-task index trees warm across
// partition pairs. When LocalJoinSpec::prepared_cache is set and the engine
// is the Prepared (JTS-analog) one, bind() results are shared across
// partitions through a PreparedCache — each overlap-duplicated right
// geometry is prepared once per run instead of once per partition. The
// Simple (GEOS-analog) engine never touches the cache: its from-scratch
// per-call work is the model being measured.
//
// Duplicate avoidance: partitions overlap-assign features, so the same
// (left, right) pair can meet in several partition pairs. The caller
// supplies an `accept` filter — typically the reference-point test
// (`reference_point` below + "is this cell the canonical cell"), or
// nullptr to keep everything and deduplicate globally (HadoopGIS-style).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "cluster/counters.hpp"
#include "core/spatial_join.hpp"
#include "geom/batch_refine.hpp"
#include "geom/engine.hpp"
#include "geom/prepared_cache.hpp"
#include "index/mbr_join.hpp"
#include "workload/dataset.hpp"

namespace sjc::core {

struct LocalJoinSpec {
  index::LocalJoinAlgorithm algorithm = index::LocalJoinAlgorithm::kIndexedNestedLoop;
  const geom::GeometryEngine* engine = &geom::GeometryEngine::prepared();
  JoinPredicate predicate = JoinPredicate::kIntersects;
  double within_distance = 0.0;

  /// Optional run-scoped cache of bind() results, shared across partition
  /// pairs (and tasks — it is thread-safe). Consulted only when `engine` is
  /// the Prepared one; the Simple engine's per-call work is the model.
  geom::PreparedCache* prepared_cache = nullptr;

  /// Refinement strategy for the Prepared engine. When true (the default)
  /// whole candidate groups are refined through geom::BatchRefiner (packed
  /// SoA linework, inner/outer approximations, batched point-in-polygon);
  /// when false every pair goes through the per-pair BoundPredicate path —
  /// kept intact as the bench_refine baseline. Answers are bit-identical
  /// either way. The Simple engine always refines per pair: its per-call
  /// cost is the model being measured.
  bool batch_refine = true;

  /// Optional sink for refinement accounting. Per run_local_join call, adds
  /// `refine.candidates` (accept-filtered candidates refined), the
  /// `refine.exact_tests` / `refine.early_accepts` / `refine.early_rejects`
  /// split (the three always sum to refine.candidates; the per-pair path
  /// counts every candidate as an exact test), and the
  /// `refine.exact_fastpath` / `refine.exact_slowpath` split of exact tests
  /// by whether the adaptive exact predicate escalated past its float
  /// filter (the two always sum to refine.exact_tests).
  cluster::Counters* refine_counters = nullptr;

  /// Envelope expansion applied to BOTH sides throughout the pipeline
  /// (partition assignment, MBR filter, reference point) for epsilon
  /// (within-distance) joins: expanding each side by d/2 guarantees that
  /// any pair within distance d has intersecting expanded envelopes.
  double envelope_expansion() const {
    return predicate == JoinPredicate::kWithinDistance ? within_distance / 2.0 : 0.0;
  }
};

/// Caller-owned reusable buffers for run_local_join. A task that processes
/// many partition pairs keeps one scratch (e.g. thread_local) so entry
/// vectors, candidate buffers and index trees are reused instead of
/// reallocated per pair.
struct LocalJoinScratch {
  std::vector<index::IndexEntry> left_entries;
  std::vector<index::IndexEntry> right_entries;
  index::MbrJoinScratch mbr;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> candidates;  // (right, left)
  std::vector<std::uint32_t> group_ends;  // per-right-id group end offsets
  std::vector<std::uint32_t> group_left;  // left ids grouped by right id
  // Batched-refinement buffers: per-group accept mask, gathered point
  // probes and their batched covered results.
  std::vector<std::uint8_t> accept_flags;
  std::vector<geom::Coord> probe_points;
  std::vector<std::uint8_t> point_covered;
};

/// Query-scoped pool of LocalJoinScratch instances.
///
/// The system drivers used to keep one `static thread_local` scratch per
/// worker thread — harmless when every process ran exactly one join, but
/// wrong for a serving process whose pool threads outlive the query: scratch
/// buffers (and their high-water memory) from one tenant's query silently
/// survived into the next. A ScratchPool is owned by the *query* instead:
/// tasks check a scratch out for the duration of one task, buffers stay warm
/// across the partition pairs that task processes, and the whole pool (and
/// every buffer in it) dies with the query.
class ScratchPool {
 public:
  /// RAII checkout: returns the scratch to the pool on destruction.
  class Lease {
   public:
    Lease(ScratchPool& pool, std::unique_ptr<LocalJoinScratch> scratch)
        : pool_(&pool), scratch_(std::move(scratch)) {}
    Lease(Lease&&) = default;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;
    ~Lease() {
      if (scratch_ != nullptr) pool_->release(std::move(scratch_));
    }
    LocalJoinScratch& operator*() const { return *scratch_; }
    LocalJoinScratch* operator->() const { return scratch_.get(); }

   private:
    ScratchPool* pool_;
    std::unique_ptr<LocalJoinScratch> scratch_;
  };

  Lease acquire() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!free_.empty()) {
        auto scratch = std::move(free_.back());
        free_.pop_back();
        return {*this, std::move(scratch)};
      }
    }
    return {*this, std::make_unique<LocalJoinScratch>()};
  }

 private:
  void release(std::unique_ptr<LocalJoinScratch> scratch) {
    std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(std::move(scratch));
  }

  std::mutex mutex_;
  std::vector<std::unique_ptr<LocalJoinScratch>> free_;
};

/// Accept filter that keeps every pair (the `accept == nullptr` fast path).
struct AcceptAllPairs {
  bool operator()(const geom::Envelope&, const geom::Envelope&) const { return true; }
};

/// Top-left corner of the two envelopes' intersection: the canonical point
/// for duplicate avoidance (identical in every partition pair where the two
/// features meet).
geom::Coord reference_point(const geom::Envelope& a, const geom::Envelope& b);

/// Exact predicate evaluation used by the refinement step (and by tests).
bool evaluate_predicate(const geom::GeometryEngine& engine, JoinPredicate predicate,
                        double within_distance, const geom::Geometry& left,
                        const geom::Geometry& right);

/// Joins `left` x `right` within one partition; appends accepted pairs to
/// `out`. `accept(left_env, right_env)` sees the epsilon-expanded envelopes
/// used for partition assignment. The templated hot path: sink, accept and
/// predicate dispatch all inline, and `scratch` carries reusable state
/// across calls. `left`/`right` are any random-access feature sequences
/// (size()/empty()/operator[] -> const geom::Feature&): std::span for
/// materialized blocks, FeatureIndexSpan/FeatureRefSpan for the zero-copy
/// partition plane.
template <typename LeftSeq, typename RightSeq, typename AcceptFn>
void run_local_join(const LeftSeq& left, const RightSeq& right,
                    const LocalJoinSpec& spec, AcceptFn&& accept,
                    LocalJoinScratch& scratch, std::vector<JoinPair>& out) {
  if (left.empty() || right.empty()) return;

  // Filter phase: MBR join over local indices (epsilon-expanded for
  // within-distance joins). Expanded envelopes are computed once here and
  // reused by both the filter and the accept test below.
  const double expand = spec.envelope_expansion();
  auto& left_entries = scratch.left_entries;
  auto& right_entries = scratch.right_entries;
  left_entries.clear();
  right_entries.clear();
  left_entries.reserve(left.size());
  right_entries.reserve(right.size());
  for (std::uint32_t i = 0; i < left.size(); ++i) {
    left_entries.push_back({left[i].geometry.envelope().expanded_by(expand), i});
  }
  for (std::uint32_t i = 0; i < right.size(); ++i) {
    right_entries.push_back({right[i].geometry.envelope().expanded_by(expand), i});
  }
  auto& candidates = scratch.candidates;
  candidates.clear();
  index::local_mbr_join(spec.algorithm, left_entries, right_entries, scratch.mbr,
                        [&candidates](std::uint32_t l, std::uint32_t r) {
                          candidates.emplace_back(r, l);
                        });
  if (candidates.empty()) return;

  // Group candidates by the right-side feature so each right geometry is
  // bound (prepared) at most once per pair list. Right ids are dense in
  // [0, right.size()), so a counting-sort scatter groups in O(candidates)
  // instead of the former O(c log c) comparison sort.
  auto& ends = scratch.group_ends;
  auto& grouped = scratch.group_left;
  ends.assign(right.size(), 0);
  for (const auto& [r, l] : candidates) ++ends[r];
  std::uint32_t running = 0;
  for (std::uint32_t r = 0; r < right.size(); ++r) {
    running += ends[r];
    ends[r] = running;  // start cursor of group r+... see scatter below
  }
  // After the prefix pass ends[r] is the END of group r; scatter backwards
  // through a cursor copy-free trick: decrement-and-place.
  grouped.resize(candidates.size());
  for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
    grouped[--ends[it->first]] = it->second;
  }
  // Now ends[r] is the START of group r; group r spans
  // [ends[r], r + 1 < n ? ends[r + 1] : candidates.size()).

  const geom::GeometryEngine& engine = *spec.engine;
  const bool prepared_engine = engine.kind() == geom::EngineKind::kPrepared;
  geom::PreparedCache* cache =
      (spec.prepared_cache != nullptr && prepared_engine) ? spec.prepared_cache
                                                         : nullptr;
  const bool batched = spec.batch_refine && prepared_engine;

  geom::RefineStats stats;
  std::uint64_t refined = 0;

  for (std::uint32_t r = 0; r < right.size(); ++r) {
    const std::size_t begin = ends[r];
    const std::size_t end =
        r + 1 < right.size() ? ends[r + 1] : candidates.size();
    if (begin == end) continue;
    const auto& right_feature = right[r];
    const geom::Envelope& right_env = right_entries[r].env;

    if (batched) {
      // Batched group refinement: one BatchRefiner per right geometry,
      // whole candidate group refined against it (point probes batched
      // through the SoA point-in-polygon pass, everything else through the
      // approximation-gated scalar predicates). Results and output order
      // are bit-identical to the per-pair path below.
      std::shared_ptr<const geom::BatchRefiner> shared_refiner;
      std::unique_ptr<geom::BatchRefiner> owned_refiner;
      const geom::BatchRefiner* refiner;
      if (cache != nullptr) {
        shared_refiner =
            cache->acquire_refiner(right_feature.id, right_feature.geometry);
        refiner = shared_refiner.get();
      } else {
        owned_refiner = std::make_unique<geom::BatchRefiner>(right_feature.geometry);
        refiner = owned_refiner.get();
      }
      // For point probes against an areal anchor, the hole-aware covered
      // test answers both kIntersects and kWithin; gather them and run one
      // batched pass per group.
      const bool point_batch = refiner->has_areal() &&
                               (spec.predicate == JoinPredicate::kIntersects ||
                                spec.predicate == JoinPredicate::kWithin);
      auto& flags = scratch.accept_flags;
      flags.resize(end - begin);
      auto& pts = scratch.probe_points;
      pts.clear();
      for (std::size_t c = begin; c < end; ++c) {
        const std::uint32_t l = grouped[c];
        const bool ok = accept(left_entries[l].env, right_env);
        flags[c - begin] = ok ? 1 : 0;
        if (ok) {
          ++refined;
          if (point_batch && left[l].geometry.type() == geom::GeomType::kPoint) {
            pts.push_back(left[l].geometry.as_point());
          }
        }
      }
      if (!pts.empty()) refiner->covers_points(pts, scratch.point_covered, stats);
      // Emit in original candidate order (batched answers are consumed in
      // gather order, which pass 1 produced in this same iteration order).
      std::size_t cursor = 0;
      for (std::size_t c = begin; c < end; ++c) {
        if (flags[c - begin] == 0) continue;
        const std::uint32_t l = grouped[c];
        const auto& left_feature = left[l];
        bool hit = false;
        if (point_batch && left_feature.geometry.type() == geom::GeomType::kPoint) {
          hit = scratch.point_covered[cursor++] != 0;
        } else {
          switch (spec.predicate) {
            case JoinPredicate::kIntersects:
              hit = refiner->intersects(left_feature.geometry, stats);
              break;
            case JoinPredicate::kWithin:
              hit = refiner->contains(left_feature.geometry, stats);
              break;
            case JoinPredicate::kWithinDistance:
              hit = refiner->within_distance(left_feature.geometry,
                                             spec.within_distance, stats);
              break;
          }
        }
        if (hit) out.push_back({left_feature.id, right_feature.id});
      }
      continue;
    }

    std::shared_ptr<const geom::BoundPredicate> shared_bound;
    std::unique_ptr<geom::BoundPredicate> owned_bound;
    const geom::BoundPredicate* bound;
    if (cache != nullptr) {
      shared_bound = cache->acquire(engine, right_feature.id, right_feature.geometry);
      bound = shared_bound.get();
    } else {
      owned_bound = engine.bind(right_feature.geometry);
      bound = owned_bound.get();
    }

    for (std::size_t c = begin; c < end; ++c) {
      const std::uint32_t l = grouped[c];
      // The accept filter sees the same (expanded) envelopes used for
      // partition assignment so reference-point dedup stays consistent.
      if (!accept(left_entries[l].env, right_env)) continue;
      // The per-pair path has no approximations: every refined candidate
      // is an exact test, keeping the counter-sum invariant intact.
      ++refined;
      const std::uint64_t slow0 = geom::exact::slowpath_calls();
      const auto& left_feature = left[l];
      bool hit = false;
      switch (spec.predicate) {
        case JoinPredicate::kIntersects:
          hit = bound->intersects(left_feature.geometry);
          break;
        case JoinPredicate::kWithin:
          hit = bound->contains(left_feature.geometry);
          break;
        case JoinPredicate::kWithinDistance:
          hit = bound->within_distance(left_feature.geometry, spec.within_distance);
          break;
      }
      stats.note_exact(slow0);
      if (hit) out.push_back({left_feature.id, right_feature.id});
    }
  }

  if (spec.refine_counters != nullptr && refined > 0) {
    spec.refine_counters->add("refine.candidates", refined);
    spec.refine_counters->add("refine.exact_tests", stats.exact_tests);
    spec.refine_counters->add("refine.early_accepts", stats.early_accepts);
    spec.refine_counters->add("refine.early_rejects", stats.early_rejects);
    spec.refine_counters->add("refine.exact_fastpath", stats.exact_fastpath);
    spec.refine_counters->add("refine.exact_slowpath", stats.exact_slowpath);
  }
}

/// std::function compatibility overload: `accept` may be empty (keep all).
/// Allocates a fresh scratch per call; hot callers use the template above.
void run_local_join(
    std::span<const geom::Feature> left, std::span<const geom::Feature> right,
    const LocalJoinSpec& spec,
    const std::function<bool(const geom::Envelope&, const geom::Envelope&)>& accept,
    std::vector<JoinPair>& out);

}  // namespace sjc::core
