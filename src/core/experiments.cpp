#include "core/experiments.hpp"

#include <cstdlib>

#include "util/status.hpp"
#include "util/strings.hpp"

namespace sjc::core {

const std::vector<ExperimentDef>& full_experiments() {
  static const std::vector<ExperimentDef> defs = {
      {"taxi-nycb", workload::DatasetId::kTaxi, workload::DatasetId::kNycb,
       JoinPredicate::kWithin},
      {"edge-linearwater", workload::DatasetId::kEdges, workload::DatasetId::kLinearwater,
       JoinPredicate::kIntersects},
  };
  return defs;
}

const std::vector<ExperimentDef>& sample_experiments() {
  static const std::vector<ExperimentDef> defs = {
      {"taxi1m-nycb", workload::DatasetId::kTaxi1m, workload::DatasetId::kNycb,
       JoinPredicate::kWithin},
      {"edge0.1-linearwater0.1", workload::DatasetId::kEdges01,
       workload::DatasetId::kLinearwater01, JoinPredicate::kIntersects},
  };
  return defs;
}

std::vector<cluster::ClusterSpec> paper_cluster_configs() {
  return {cluster::ClusterSpec::workstation(), cluster::ClusterSpec::ec2(10),
          cluster::ClusterSpec::ec2(8), cluster::ClusterSpec::ec2(6)};
}

double bench_scale(double fallback) {
  const char* env = std::getenv("SJC_SCALE");
  if (env == nullptr) return fallback;
  try {
    const double v = parse_double(env);
    if (v > 0.0 && v <= 1.0) return v;
  } catch (const ParseError&) {
  }
  return fallback;
}

}  // namespace sjc::core
