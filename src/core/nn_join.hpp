// Nearest-neighbor join: for every left feature, the single right feature
// with the smallest exact distance.
//
// This is the paper's motivating taxi-pickup-to-nearest-road-segment
// workload, provided as a serial/shared-memory primitive (the three
// distributed systems evaluate the within-distance variant; an exact
// distributed NN join needs neighborhood guarantees none of them
// implements). Candidates are pruned with best-first MBR traversal
// (index/nearest.hpp) and re-ranked with exact geometry distance, so the
// result equals brute force at a fraction of the comparisons.
#pragma once

#include <span>
#include <vector>

#include "core/spatial_join.hpp"
#include "geom/engine.hpp"
#include "workload/dataset.hpp"

namespace sjc::core {

struct NnMatch {
  std::uint64_t left_id = 0;
  std::uint64_t right_id = 0;
  double distance = 0.0;

  friend bool operator==(const NnMatch&, const NnMatch&) = default;
};

/// For each feature in `left`, finds the nearest feature in `right` by
/// exact geometry distance (ties broken by lower id). Returns matches in
/// left order; empty when `right` is empty.
std::vector<NnMatch> nearest_neighbor_join(
    std::span<const geom::Feature> left, std::span<const geom::Feature> right,
    const geom::GeometryEngine& engine = geom::GeometryEngine::prepared());

}  // namespace sjc::core
