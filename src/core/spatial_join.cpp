#include "core/spatial_join.hpp"
#include <algorithm>

#include "util/rng.hpp"

namespace sjc::core {

const char* system_kind_name(SystemKind kind) {
  switch (kind) {
    case SystemKind::kHadoopGisSim: return "HadoopGIS-sim";
    case SystemKind::kSpatialHadoopSim: return "SpatialHadoop-sim";
    case SystemKind::kSpatialSparkSim: return "SpatialSpark-sim";
  }
  return "?";
}

const char* join_predicate_name(JoinPredicate predicate) {
  switch (predicate) {
    case JoinPredicate::kIntersects: return "intersects";
    case JoinPredicate::kWithin: return "within";
    case JoinPredicate::kWithinDistance: return "within-distance";
  }
  return "?";
}

std::uint32_t effective_target_partitions(const JoinQueryConfig& query,
                                          const cluster::ClusterSpec& cluster) {
  if (query.target_partitions != 0) return query.target_partitions;
  return std::max<std::uint32_t>(128, cluster.total_slots() * 2);
}

double effective_sample_rate(double configured_rate, std::size_t dataset_size,
                             std::uint32_t target_cells) {
  if (dataset_size == 0) return 1.0;
  const double floor_rate =
      std::min(1.0, 4.0 * static_cast<double>(target_cells) /
                        static_cast<double>(dataset_size));
  return std::max(configured_rate, floor_rate);
}

void annotate_recovery(RunReport& report) {
  std::uint64_t task_count = 0;
  for (const auto& p : report.metrics.phases()) task_count += p.task_count;
  report.attempts_used = report.metrics.total_task_attempts();
  report.recovered =
      report.success &&
      (report.attempts_used > task_count ||
       report.metrics.total_speculative_clones() > 0 ||
       report.metrics.total_recomputed_partitions() > 0 ||
       report.metrics.total_rereplicated_bytes() > 0);
}

std::uint64_t hash_pairs_unordered(const std::vector<JoinPair>& pairs) {
  // Commutative accumulation of a strong per-pair mix: equal sets hash
  // equal regardless of order; different multiplicities hash differently.
  std::uint64_t acc = 0;
  for (const auto& p : pairs) {
    acc += mix64(p.left_id * 0x9e3779b97f4a7c15ULL ^ mix64(p.right_id + 0x51ed2701));
  }
  return acc;
}

}  // namespace sjc::core
