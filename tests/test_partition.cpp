// Tests for samplers and spatial partitioners: coverage, assignment
// completeness, balance under skew.
#include <gtest/gtest.h>

#include <numeric>

#include "partition/partition_stats.hpp"
#include "partition/partitioner.hpp"
#include "partition/sampler.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace sjc::partition {
namespace {

std::vector<geom::Envelope> skewed_boxes(Rng& rng, std::size_t n) {
  std::vector<geom::Envelope> out;
  for (std::size_t i = 0; i < n; ++i) {
    // 80% clustered near (20, 20), 20% uniform in [0, 100]^2.
    double x, y;
    if (rng.bernoulli(0.8)) {
      x = std::clamp(rng.normal(20.0, 4.0), 0.0, 100.0);
      y = std::clamp(rng.normal(20.0, 4.0), 0.0, 100.0);
    } else {
      x = rng.uniform(0, 100);
      y = rng.uniform(0, 100);
    }
    out.emplace_back(x, y, std::min(100.0, x + rng.uniform(0, 1.0)),
                     std::min(100.0, y + rng.uniform(0, 1.0)));
  }
  return out;
}

// ---------------------------------------------------------------------------
// samplers
// ---------------------------------------------------------------------------

TEST(Sampler, BernoulliRateZeroAndOne) {
  Rng rng(1);
  EXPECT_TRUE(bernoulli_sample(1000, 0.0, rng).empty());
  EXPECT_EQ(bernoulli_sample(1000, 1.0, rng).size(), 1000u);
}

TEST(Sampler, BernoulliApproximatesRate) {
  Rng rng(2);
  const auto sample = bernoulli_sample(100000, 0.1, rng);
  EXPECT_NEAR(static_cast<double>(sample.size()), 10000.0, 500.0);
  // Indices strictly increasing (one pass).
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
}

TEST(Sampler, BernoulliRejectsBadRate) {
  Rng rng(1);
  EXPECT_THROW(bernoulli_sample(10, -0.1, rng), InvalidArgument);
  EXPECT_THROW(bernoulli_sample(10, 1.1, rng), InvalidArgument);
}

TEST(Sampler, ReservoirExactSize) {
  Rng rng(3);
  EXPECT_EQ(reservoir_sample(1000, 64, rng).size(), 64u);
  EXPECT_EQ(reservoir_sample(10, 64, rng).size(), 10u);  // n < k keeps all
}

TEST(Sampler, ReservoirIsUniformish) {
  // Each index should appear with probability k/n; check the first and last
  // deciles are not starved (a classic reservoir bug).
  Rng rng(4);
  std::vector<int> counts(100, 0);
  for (int trial = 0; trial < 2000; ++trial) {
    for (const auto idx : reservoir_sample(100, 10, rng)) counts[idx]++;
  }
  const int total = std::accumulate(counts.begin(), counts.end(), 0);
  EXPECT_EQ(total, 20000);
  for (const int c : counts) EXPECT_NEAR(c, 200, 80);
}

TEST(Sampler, GatherEnvelopes) {
  const std::vector<geom::Envelope> envs = {geom::Envelope(0, 0, 1, 1),
                                            geom::Envelope(2, 2, 3, 3)};
  const auto got = gather_envelopes(envs, {1});
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], envs[1]);
}

// ---------------------------------------------------------------------------
// partitioners, parameterized
// ---------------------------------------------------------------------------

class PartitionerTest : public ::testing::TestWithParam<PartitionerKind> {};

TEST_P(PartitionerTest, CellsCoverTheExtent) {
  Rng rng(10);
  const geom::Envelope extent(0, 0, 100, 100);
  const auto sample = skewed_boxes(rng, 2000);
  const PartitionScheme scheme = make_partitions(GetParam(), sample, extent, 64);
  // Probe a dense grid of points: every point must land in >= 1 cell without
  // the nearest-cell fallback kicking in (check containment directly).
  for (double x = 0.5; x < 100; x += 3.17) {
    for (double y = 0.5; y < 100; y += 3.17) {
      bool covered = false;
      for (const auto& cell : scheme.cells()) {
        if (cell.contains(x, y)) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << partitioner_kind_name(GetParam()) << " misses (" << x
                           << "," << y << ")";
    }
  }
}

TEST_P(PartitionerTest, AssignNeverEmpty) {
  Rng rng(11);
  const geom::Envelope extent(0, 0, 100, 100);
  const PartitionScheme scheme =
      make_partitions(GetParam(), skewed_boxes(rng, 500), extent, 32);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-20, 120);  // includes out-of-extent probes
    const double y = rng.uniform(-20, 120);
    EXPECT_FALSE(scheme.assign(geom::Envelope::of_point(x, y)).empty());
  }
}

TEST_P(PartitionerTest, RoughlyHitsTargetCellCount) {
  Rng rng(12);
  const PartitionScheme scheme = make_partitions(
      GetParam(), skewed_boxes(rng, 4000), geom::Envelope(0, 0, 100, 100), 64);
  EXPECT_GE(scheme.cell_count(), 16u);
  EXPECT_LE(scheme.cell_count(), 160u);
}

TEST_P(PartitionerTest, EmptySampleFallsBackToSingleCell) {
  const PartitionScheme scheme =
      make_partitions(GetParam(), {}, geom::Envelope(0, 0, 10, 10), 16);
  EXPECT_GE(scheme.cell_count(), 1u);
  EXPECT_FALSE(scheme.assign(geom::Envelope::of_point(5, 5)).empty());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, PartitionerTest,
                         ::testing::Values(PartitionerKind::kFixedGrid,
                                           PartitionerKind::kStr,
                                           PartitionerKind::kBsp),
                         [](const auto& info) {
                           std::string n = partitioner_kind_name(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// Adaptive partitioners must balance a skewed workload far better than the
// fixed grid — the reason SATO-style partitioning exists.
TEST(Partitioner, AdaptiveBeatsFixedGridUnderSkew) {
  Rng rng(13);
  const geom::Envelope extent(0, 0, 100, 100);
  const auto items = skewed_boxes(rng, 8000);
  Rng sample_rng(14);
  const auto sample_idx = bernoulli_sample(items.size(), 0.1, sample_rng);
  const auto sample = gather_envelopes(items, sample_idx);

  const auto skew_of = [&](PartitionerKind kind) {
    const PartitionScheme scheme = make_partitions(kind, sample, extent, 64);
    return compute_partition_stats(scheme, items).skew;
  };
  const double grid_skew = skew_of(PartitionerKind::kFixedGrid);
  const double str_skew = skew_of(PartitionerKind::kStr);
  const double bsp_skew = skew_of(PartitionerKind::kBsp);
  EXPECT_LT(str_skew, grid_skew / 2.0);
  EXPECT_LT(bsp_skew, grid_skew / 2.0);
}

TEST(PartitionStats, CountsAndReplication) {
  const PartitionScheme scheme = make_fixed_grid(geom::Envelope(0, 0, 10, 10), 2, 2);
  // One box straddling all four cells, one inside a single cell.
  const std::vector<geom::Envelope> items = {geom::Envelope(4, 4, 6, 6),
                                             geom::Envelope(1, 1, 2, 2)};
  const auto stats = compute_partition_stats(scheme, items);
  EXPECT_EQ(stats.item_count, 2u);
  EXPECT_EQ(stats.assignment_count, 5u);
  EXPECT_DOUBLE_EQ(stats.replication_factor, 2.5);
  EXPECT_EQ(stats.cell_count, 4u);
  EXPECT_EQ(stats.max_cell_items, 2u);
}

TEST(PartitionScheme, RejectsEmptyCellList) {
  EXPECT_THROW(PartitionScheme({}, geom::Envelope(0, 0, 1, 1)), InvalidArgument);
}

TEST(PartitionScheme, NearestCellFallback) {
  // A single cell far from the probe: assign() must still return it.
  const PartitionScheme scheme({geom::Envelope(0, 0, 1, 1)},
                               geom::Envelope(0, 0, 1, 1));
  const auto pids = scheme.assign(geom::Envelope::of_point(50, 50));
  EXPECT_EQ(pids, std::vector<std::uint32_t>{0});
}

TEST(FixedGrid, ExactTilingNoGapsNoOverlapsInteriorly) {
  const PartitionScheme scheme = make_fixed_grid(geom::Envelope(0, 0, 10, 10), 4, 4);
  EXPECT_EQ(scheme.cell_count(), 16u);
  double total_area = 0;
  for (const auto& c : scheme.cells()) total_area += c.area();
  EXPECT_NEAR(total_area, 100.0, 1e-9);
}

}  // namespace
}  // namespace sjc::partition
