// Tests for the native MapReduce engine: correctness of the map/shuffle/
// sort/reduce dataflow, metrics accounting and the framework-overhead
// constants the simulation hinges on.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "mapreduce/map_reduce.hpp"

namespace sjc::mapreduce {
namespace {

MrContext make_context(cluster::RunMetrics& metrics, dfs::SimDfs& fs,
                       const cluster::ClusterSpec& spec) {
  return MrContext{&spec, 1000.0, &fs, &metrics};
}

// Word-count-shaped job: In = word, K = word, V = 1, Out = (word, count).
MapReduceSpec<std::string, std::string, int, std::pair<std::string, int>> word_count() {
  MapReduceSpec<std::string, std::string, int, std::pair<std::string, int>> spec;
  spec.name = "wordcount";
  spec.map = [](const std::string& word, const std::function<void(std::string, int)>& emit) {
    emit(word, 1);
  };
  spec.reduce = [](const std::string& word, std::vector<int>& counts,
                   std::vector<std::pair<std::string, int>>& out) {
    int total = 0;
    for (const int c : counts) total += c;
    out.emplace_back(word, total);
  };
  spec.input_bytes = [](const std::string& w) { return w.size() + 1; };
  spec.pair_bytes = [](const std::string& k, const int&) { return k.size() + 4; };
  spec.output_bytes = [](const std::pair<std::string, int>& o) {
    return o.first.size() + 8;
  };
  spec.key_less = std::less<std::string>();
  spec.key_hash = std::hash<std::string>();
  return spec;
}

TEST(MapReduce, WordCountCorrectness) {
  cluster::RunMetrics metrics;
  dfs::SimDfs fs({});
  const auto spec_cluster = cluster::ClusterSpec::workstation();
  MrContext ctx = make_context(metrics, fs, spec_cluster);

  const std::vector<std::vector<std::string>> splits = {
      {"a", "b", "a"}, {"c", "a"}, {"b"}};
  const auto result = run_map_reduce(ctx, word_count(), splits);

  std::map<std::string, int> counts;
  for (const auto& [word, count] : result) counts[word] = count;
  EXPECT_EQ(counts.at("a"), 3);
  EXPECT_EQ(counts.at("b"), 2);
  EXPECT_EQ(counts.at("c"), 1);
  EXPECT_EQ(counts.size(), 3u);
}

TEST(MapReduce, KeysSortedWithinReduceTask) {
  cluster::RunMetrics metrics;
  dfs::SimDfs fs({});
  const auto spec_cluster = cluster::ClusterSpec::workstation();
  MrContext ctx = make_context(metrics, fs, spec_cluster);

  auto spec = word_count();
  spec.config.reduce_tasks = 1;  // single reducer -> global key order
  const std::vector<std::vector<std::string>> splits = {{"z", "m", "a", "m", "z"}};
  const auto result = run_map_reduce(ctx, spec, splits);
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0].first, "a");
  EXPECT_EQ(result[1].first, "m");
  EXPECT_EQ(result[2].first, "z");
}

TEST(MapReduce, RecordsMapAndReducePhases) {
  cluster::RunMetrics metrics;
  dfs::SimDfs fs({});
  const auto spec_cluster = cluster::ClusterSpec::workstation();
  MrContext ctx = make_context(metrics, fs, spec_cluster);
  run_map_reduce(ctx, word_count(), {{"a", "b"}, {"c"}});

  ASSERT_EQ(metrics.phases().size(), 2u);
  EXPECT_EQ(metrics.phases()[0].name, "wordcount/map");
  EXPECT_EQ(metrics.phases()[1].name, "wordcount/reduce");
  EXPECT_EQ(metrics.phases()[0].task_count, 2u);
  EXPECT_GT(metrics.phases()[0].sim_seconds, 0.0);
  EXPECT_GT(metrics.phases()[0].bytes_read, 0u);
  EXPECT_GT(metrics.phases()[1].bytes_shuffled, 0u);
}

TEST(MapReduce, JobStartupOverheadCharged) {
  cluster::RunMetrics metrics;
  dfs::SimDfs fs({});
  const auto spec_cluster = cluster::ClusterSpec::workstation();
  MrContext ctx = make_context(metrics, fs, spec_cluster);
  auto spec = word_count();
  spec.config.job_startup_s = 100.0;
  run_map_reduce(ctx, spec, {{"a"}});
  EXPECT_GE(metrics.phases()[0].sim_seconds, 100.0);
}

TEST(MapReduce, ShuffleFetchLatencyOnlyOnMultiNode) {
  const auto run_with = [](const cluster::ClusterSpec& spec_cluster) {
    cluster::RunMetrics metrics;
    dfs::SimDfs fs(dfs::DfsConfig{.block_size = 64 * 1024, .replication = 3,
                                  .datanode_count = spec_cluster.node_count,
                                  .seed = 1});
    MrContext ctx{&spec_cluster, 1000.0, &fs, &metrics};
    auto spec = word_count();
    spec.config.job_startup_s = 0.0;
    spec.config.task_overhead_s = 0.0;
    spec.config.shuffle_fetch_latency_s = 1.0;
    spec.config.reduce_tasks = 1;
    run_map_reduce(ctx, spec, {{"a"}, {"b"}, {"c"}});  // 3 map tasks
    return metrics.phases()[1].sim_seconds;
  };
  const double single = run_with(cluster::ClusterSpec::workstation());
  const double multi = run_with(cluster::ClusterSpec::ec2(4));
  // Multi-node: reducer pays 3 maps x 1s fetch setup.
  EXPECT_GE(multi - single, 2.5);
}

TEST(MapReduce, EmptyInputProducesNoOutput) {
  cluster::RunMetrics metrics;
  dfs::SimDfs fs({});
  const auto spec_cluster = cluster::ClusterSpec::workstation();
  MrContext ctx = make_context(metrics, fs, spec_cluster);
  const auto result = run_map_reduce(ctx, word_count(), {{}});
  EXPECT_TRUE(result.empty());
}

TEST(MapReduce, DeterministicAcrossRuns) {
  const auto run_once = [] {
    cluster::RunMetrics metrics;
    dfs::SimDfs fs({});
    const auto spec_cluster = cluster::ClusterSpec::ec2(4);
    MrContext ctx{&spec_cluster, 1000.0, &fs, &metrics};
    return run_map_reduce(ctx, word_count(), {{"x", "y", "x"}, {"z", "x"}});
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
}

TEST(MapReduce, MissingCallbacksRejected) {
  cluster::RunMetrics metrics;
  dfs::SimDfs fs({});
  const auto spec_cluster = cluster::ClusterSpec::workstation();
  MrContext ctx = make_context(metrics, fs, spec_cluster);
  MapReduceSpec<int, int, int, int> bad;
  bad.name = "bad";
  EXPECT_THROW(run_map_reduce(ctx, bad, {{1}}), InvalidArgument);
}

// ---------------------------------------------------------------------------
// map-only jobs
// ---------------------------------------------------------------------------

TEST(MapOnly, TransformsSplits) {
  cluster::RunMetrics metrics;
  dfs::SimDfs fs({});
  const auto spec_cluster = cluster::ClusterSpec::workstation();
  MrContext ctx = make_context(metrics, fs, spec_cluster);

  MapOnlySpec<int, int> spec;
  spec.name = "square";
  spec.map = [](const int& x, std::vector<int>& out) { out.push_back(x * x); };
  spec.split_bytes = [](const int&) { return 8; };
  spec.output_bytes = [](const int&) { return 8; };
  const auto result = run_map_only(ctx, spec, {2, 3, 4});
  EXPECT_EQ(result, (std::vector<int>{4, 9, 16}));
  ASSERT_EQ(metrics.phases().size(), 1u);
  EXPECT_EQ(metrics.phases()[0].task_count, 3u);
}

TEST(MasterStep, ChargesCpuAndIo) {
  cluster::RunMetrics metrics;
  dfs::SimDfs fs({});
  const auto spec_cluster = cluster::ClusterSpec::workstation();
  MrContext ctx = make_context(metrics, fs, spec_cluster);
  charge_master_step(ctx, "master", 0.001, 1024, 2048);
  ASSERT_EQ(metrics.phases().size(), 1u);
  // 0.001 measured / 0.2 efficiency * 1000 scale = 5s of CPU, plus I/O.
  EXPECT_GE(metrics.phases()[0].sim_seconds, 5.0);
  EXPECT_EQ(metrics.phases()[0].bytes_read, 1024u);
  EXPECT_EQ(metrics.phases()[0].bytes_written, 2048u);
}

TEST(MrContext, RemoteFraction) {
  const auto ws = cluster::ClusterSpec::workstation();
  const auto ec2 = cluster::ClusterSpec::ec2(10);
  MrContext ctx_ws{&ws, 1.0, nullptr, nullptr};
  MrContext ctx_ec2{&ec2, 1.0, nullptr, nullptr};
  EXPECT_DOUBLE_EQ(ctx_ws.remote_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(ctx_ec2.remote_fraction(), 0.9);
}

}  // namespace
}  // namespace sjc::mapreduce

namespace sjc::mapreduce {
namespace {

TEST(MapReduce, CombinerPreservesResultAndCutsShuffle) {
  const auto run = [](bool with_combiner) {
    cluster::RunMetrics metrics;
    dfs::SimDfs fs({});
    const auto spec_cluster = cluster::ClusterSpec::workstation();
    MrContext ctx{&spec_cluster, 1000.0, &fs, &metrics, nullptr};

    MapReduceSpec<std::string, std::string, int, std::pair<std::string, int>> spec;
    spec.name = "wc";
    spec.map = [](const std::string& w,
                  const std::function<void(std::string, int)>& emit) { emit(w, 1); };
    spec.reduce = [](const std::string& w, std::vector<int>& counts,
                     std::vector<std::pair<std::string, int>>& out) {
      int total = 0;
      for (const int c : counts) total += c;
      out.emplace_back(w, total);
    };
    if (with_combiner) {
      spec.combine = [](const std::string&, std::vector<int>& values,
                        std::vector<int>& combined) {
        int total = 0;
        for (const int v : values) total += v;
        combined.push_back(total);
      };
    }
    spec.input_bytes = [](const std::string& w) { return w.size() + 1; };
    spec.pair_bytes = [](const std::string& k, const int&) { return k.size() + 4; };
    spec.output_bytes = [](const auto& o) { return o.first.size() + 8; };
    spec.key_less = std::less<std::string>();
    spec.key_hash = std::hash<std::string>();

    // One split with many repeats: the combiner should crush it.
    std::vector<std::string> split;
    for (int i = 0; i < 100; ++i) split.push_back(i % 2 ? "a" : "b");
    auto result = run_map_reduce(ctx, spec, {split});
    std::sort(result.begin(), result.end());
    return std::make_pair(result, metrics.phases()[1].bytes_shuffled);
  };

  const auto [plain, plain_shuffle] = run(false);
  const auto [combined, combined_shuffle] = run(true);
  EXPECT_EQ(plain, combined);
  ASSERT_EQ(combined.size(), 2u);
  EXPECT_EQ(combined[0].second, 50);
  // 100 pairs shuffled without the combiner, 2 with it.
  EXPECT_LT(combined_shuffle * 10, plain_shuffle);
}

}  // namespace
}  // namespace sjc::mapreduce
