// Tests for geometric measures (length, area, centroid).
#include <gtest/gtest.h>

#include <cmath>

#include "geom/measures.hpp"
#include "util/rng.hpp"

namespace sjc::geom {
namespace {

Geometry square(double side, double x0 = 0, double y0 = 0) {
  return Geometry::polygon(
      {{x0, y0}, {x0 + side, y0}, {x0 + side, y0 + side}, {x0, y0 + side}, {x0, y0}});
}

TEST(Measures, PointHasNoExtent) {
  const Geometry p = Geometry::point(3, 4);
  EXPECT_EQ(length(p), 0.0);
  EXPECT_EQ(area(p), 0.0);
  EXPECT_EQ(centroid(p).x, 3.0);
  EXPECT_EQ(centroid(p).y, 4.0);
}

TEST(Measures, LineLengthAndCentroid) {
  const Geometry l = Geometry::line_string({{0, 0}, {3, 4}, {3, 10}});
  EXPECT_DOUBLE_EQ(length(l), 11.0);  // 5 + 6
  EXPECT_EQ(area(l), 0.0);
  // Length-weighted midpoint: seg1 mid (1.5, 2) w=5, seg2 mid (3, 7) w=6.
  const Coord c = centroid(l);
  EXPECT_NEAR(c.x, (1.5 * 5 + 3 * 6) / 11.0, 1e-12);
  EXPECT_NEAR(c.y, (2.0 * 5 + 7 * 6) / 11.0, 1e-12);
}

TEST(Measures, SquareAreaPerimeterCentroid) {
  const Geometry s = square(4);
  EXPECT_DOUBLE_EQ(area(s), 16.0);
  EXPECT_DOUBLE_EQ(length(s), 16.0);  // perimeter
  EXPECT_NEAR(centroid(s).x, 2.0, 1e-12);
  EXPECT_NEAR(centroid(s).y, 2.0, 1e-12);
}

TEST(Measures, HoleSubtractsAreaAndShiftsCentroid) {
  const Geometry donut = Geometry::polygon(
      {{0, 0}, {10, 0}, {10, 10}, {0, 10}, {0, 0}},
      {{{1, 1}, {4, 1}, {4, 4}, {1, 4}, {1, 1}}});  // 3x3 hole near a corner
  EXPECT_DOUBLE_EQ(area(donut), 100.0 - 9.0);
  EXPECT_DOUBLE_EQ(length(donut), 40.0 + 12.0);  // both rings
  // Removing mass at (2.5, 2.5) pushes the centroid past (5, 5).
  const Coord c = centroid(donut);
  EXPECT_GT(c.x, 5.0);
  EXPECT_GT(c.y, 5.0);
  EXPECT_NEAR(c.x, (100 * 5.0 - 9 * 2.5) / 91.0, 1e-9);
}

TEST(Measures, OrientationDoesNotAffectArea) {
  Ring cw = {{0, 0}, {0, 4}, {4, 4}, {4, 0}, {0, 0}};  // clockwise
  const Geometry g = Geometry::polygon(std::move(cw));
  EXPECT_DOUBLE_EQ(area(g), 16.0);
  const Coord c = centroid(g);
  EXPECT_NEAR(c.x, 2.0, 1e-12);
}

TEST(Measures, MultiPolygonSumsParts) {
  const Geometry m = Geometry::multi_polygon(
      {square(2).as_polygon(), square(3, 10, 10).as_polygon()});
  EXPECT_DOUBLE_EQ(area(m), 4.0 + 9.0);
  // Area-weighted centroid of (1,1)x4 and (11.5,11.5)x9.
  const Coord c = centroid(m);
  EXPECT_NEAR(c.x, (1.0 * 4 + 11.5 * 9) / 13.0, 1e-9);
}

TEST(Measures, MultiLineStringSums) {
  const Geometry m = Geometry::multi_line_string(
      {LineString{{{0, 0}, {2, 0}}}, LineString{{{0, 5}, {0, 9}}}});
  EXPECT_DOUBLE_EQ(length(m), 6.0);
  const Coord c = centroid(m);
  EXPECT_NEAR(c.x, (1.0 * 2 + 0.0 * 4) / 6.0, 1e-12);
  EXPECT_NEAR(c.y, (0.0 * 2 + 7.0 * 4) / 6.0, 1e-12);
}

TEST(Measures, DegenerateLineFallsBack) {
  const Geometry l = Geometry::line_string({{3, 3}, {3, 3}});
  EXPECT_EQ(length(l), 0.0);
  EXPECT_EQ(centroid(l).x, 3.0);
}

// Property: centroid of a convex polygon lies inside its envelope; area is
// translation-invariant.
TEST(MeasuresProperty, TranslationInvariance) {
  Rng rng(12);
  for (int trial = 0; trial < 300; ++trial) {
    const Coord c{rng.uniform(-50, 50), rng.uniform(-50, 50)};
    Ring ring;
    // Star polygon with every angular gap < pi: guarantees a SIMPLE ring
    // (each edge stays inside its convex angular wedge), so area/centroid
    // are well-defined.
    const int n = 4 + static_cast<int>(rng.next_below(9));
    for (int i = 0; i < n; ++i) {
      const double a = (i + 0.8 * rng.next_double()) * 2.0 * 3.14159265358979 / n;
      const double r = rng.uniform(1, 10);
      ring.push_back({c.x + r * std::cos(a), c.y + r * std::sin(a)});
    }
    ring.push_back(ring.front());
    Ring shifted = ring;
    for (auto& p : shifted) {
      p.x += 1000;
      p.y -= 500;
    }
    const Geometry g = Geometry::polygon(std::move(ring));
    const Geometry h = Geometry::polygon(std::move(shifted));
    EXPECT_NEAR(area(g), area(h), 1e-6);
    EXPECT_NEAR(length(g), length(h), 1e-6);
    EXPECT_NEAR(centroid(h).x - centroid(g).x, 1000.0, 1e-5);
    EXPECT_TRUE(g.envelope().contains(centroid(g).x, centroid(g).y));
  }
}

}  // namespace
}  // namespace sjc::geom
