// Tests for the Hadoop Streaming engine: line semantics, sort-based
// grouping, per-task mapper factories, pipe accounting and BrokenPipe
// failures.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>

#include "mapreduce/streaming.hpp"

namespace sjc::mapreduce {
namespace {

struct StreamingFixture {
  cluster::RunMetrics metrics;
  dfs::SimDfs fs{dfs::DfsConfig{}};
  cluster::ClusterSpec spec_cluster = cluster::ClusterSpec::workstation();
  MrContext ctx{&spec_cluster, 1000.0, &fs, &metrics};
};

StreamingSpec identity_job(const std::string& name = "identity") {
  StreamingSpec spec;
  spec.name = name;
  spec.map = [](const std::string& line, std::vector<std::string>& out) {
    out.push_back(line);
  };
  spec.reduce = [](const std::vector<std::string>& lines,
                   std::vector<std::string>& out) {
    for (const auto& l : lines) out.push_back(l);
  };
  return spec;
}

TEST(StreamingKey, TextBeforeFirstTab) {
  const std::string line = "key1\tvalue\tmore";
  EXPECT_EQ(streaming_key(line), "key1");
  const std::string no_tab = "whole-line";
  EXPECT_EQ(streaming_key(no_tab), "whole-line");
}

TEST(Streaming, IdentityPreservesMultiset) {
  StreamingFixture f;
  const std::vector<std::vector<std::string>> splits = {{"b\t1", "a\t2"}, {"a\t3"}};
  auto out = run_streaming(f.ctx, identity_job(), splits);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<std::string>{"a\t2", "a\t3", "b\t1"}));
}

TEST(Streaming, ReducerSeesSortedLines) {
  StreamingFixture f;
  StreamingSpec spec = identity_job("sorted");
  spec.config.mr.reduce_tasks = 1;
  bool checked = false;
  spec.reduce = [&checked](const std::vector<std::string>& lines,
                           std::vector<std::string>& out) {
    EXPECT_TRUE(std::is_sorted(lines.begin(), lines.end()));
    checked = true;
    for (const auto& l : lines) out.push_back(l);
  };
  run_streaming(f.ctx, spec, {{"z\t1", "a\t1"}, {"m\t1", "a\t0"}});
  EXPECT_TRUE(checked);
}

TEST(Streaming, SameKeySameReducer) {
  StreamingFixture f;
  StreamingSpec spec = identity_job("grouping");
  // Count within each reducer invocation how many "k" lines it got; across
  // invocations "k" must never split.
  std::vector<std::size_t> k_counts;
  std::mutex mutex;
  spec.reduce = [&](const std::vector<std::string>& lines,
                    std::vector<std::string>& out) {
    std::size_t k = 0;
    for (const auto& l : lines) {
      if (streaming_key(l) == "k") ++k;
    }
    if (k > 0) {
      std::lock_guard<std::mutex> lock(mutex);
      k_counts.push_back(k);
    }
    for (const auto& l : lines) out.push_back(l);
  };
  run_streaming(f.ctx, spec,
                {{"k\t1", "x\t1"}, {"k\t2", "y\t1"}, {"k\t3"}});
  ASSERT_EQ(k_counts.size(), 1u);
  EXPECT_EQ(k_counts[0], 3u);
}

TEST(Streaming, MapOnlySkipsShuffle) {
  StreamingFixture f;
  StreamingSpec spec = identity_job("maponly");
  const auto out = run_streaming_map_only(f.ctx, spec, {{"c"}, {"a"}, {"b"}});
  EXPECT_EQ(out, (std::vector<std::string>{"c", "a", "b"}));  // input order
  ASSERT_EQ(f.metrics.phases().size(), 1u);
  EXPECT_EQ(f.metrics.phases()[0].bytes_shuffled, 0u);
}

TEST(Streaming, MakeMapperCalledOncePerTask) {
  StreamingFixture f;
  StreamingSpec spec;
  spec.name = "factory";
  std::atomic<int> factories{0};
  spec.make_mapper = [&factories](std::size_t task) -> StreamingMapFn {
    ++factories;
    return [task](const std::string& line, std::vector<std::string>& out) {
      out.push_back(std::to_string(task) + ":" + line);
    };
  };
  spec.reduce = [](const std::vector<std::string>& lines,
                   std::vector<std::string>& out) {
    for (const auto& l : lines) out.push_back(l);
  };
  auto out = run_streaming(f.ctx, spec, {{"x"}, {"y"}, {"z"}});
  EXPECT_EQ(factories.load(), 3);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<std::string>{"0:x", "1:y", "2:z"}));
}

TEST(Streaming, BrokenPipeOnMapOverflow) {
  StreamingFixture f;
  StreamingSpec spec = identity_job("overflow");
  // Each line ~2 bytes; scaled x1000 -> ~6KB through the pipe; capacity 1KB.
  spec.config.pipe_capacity_bytes = 1024;
  EXPECT_THROW(run_streaming_map_only(f.ctx, spec, {{"a", "b", "c"}}), BrokenPipe);
}

TEST(Streaming, BrokenPipeOnReduceOverflow) {
  StreamingFixture f;
  StreamingSpec spec = identity_job("overflow2");
  spec.config.mr.reduce_tasks = 1;
  // Map side fits (per-task volume small across 4 splits), reduce side
  // concentrates everything in one task and bursts.
  spec.config.pipe_capacity_bytes = 9000;
  const std::vector<std::vector<std::string>> splits = {
      {"a\tx"}, {"b\tx"}, {"c\tx"}, {"d\tx"}};
  EXPECT_THROW(run_streaming(f.ctx, spec, splits), BrokenPipe);
}

TEST(Streaming, ZeroCapacityDisablesCheck) {
  StreamingFixture f;
  StreamingSpec spec = identity_job("nocheck");
  spec.config.pipe_capacity_bytes = 0;
  EXPECT_NO_THROW(run_streaming(f.ctx, spec, {{"a", "b", "c"}}));
}

TEST(Streaming, RecordsMaxTaskPipeBytes) {
  StreamingFixture f;
  StreamingSpec spec = identity_job("pipes");
  run_streaming(f.ctx, spec, {{"aa"}, {"bbbb"}});
  // Largest map task: "bbbb" in+out = (5 + 5) scaled x1000 = 10000.
  EXPECT_EQ(f.metrics.phases()[0].max_task_pipe_bytes, 10000u);
  EXPECT_EQ(f.metrics.max_task_pipe_bytes(),
            std::max(f.metrics.phases()[0].max_task_pipe_bytes,
                     f.metrics.phases()[1].max_task_pipe_bytes));
}

TEST(Streaming, PipeBandwidthChargesTime) {
  StreamingFixture f;
  StreamingSpec slow = identity_job("slow");
  slow.config.pipe_bandwidth = 1024;  // 1 KB/s: pipes dominate
  StreamingSpec fast = identity_job("fast");
  fast.config.pipe_bandwidth = 1024.0 * 1024 * 1024;
  StreamingFixture f2;
  run_streaming_map_only(f.ctx, slow, {{"abcdefgh"}});
  run_streaming_map_only(f2.ctx, fast, {{"abcdefgh"}});
  EXPECT_GT(f.metrics.total_seconds(), f2.metrics.total_seconds() + 1.0);
}

TEST(Streaming, RequiresCallbacks) {
  StreamingFixture f;
  StreamingSpec spec;
  spec.name = "bad";
  EXPECT_THROW(run_streaming(f.ctx, spec, {{}}), InvalidArgument);
  EXPECT_THROW(run_streaming_map_only(f.ctx, spec, {{}}), InvalidArgument);
}

}  // namespace
}  // namespace sjc::mapreduce
