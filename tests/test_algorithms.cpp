// Tests for the low-level computational-geometry kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "geom/algorithms.hpp"
#include "util/rng.hpp"

namespace sjc::geom {
namespace {

TEST(Orientation, LeftRightCollinear) {
  EXPECT_GT(orientation({0, 0}, {1, 0}, {1, 1}), 0.0);   // left turn
  EXPECT_LT(orientation({0, 0}, {1, 0}, {1, -1}), 0.0);  // right turn
  EXPECT_EQ(orientation({0, 0}, {1, 0}, {2, 0}), 0.0);   // collinear
}

TEST(PointOnSegment, EndpointsAndMiddle) {
  EXPECT_TRUE(point_on_segment({0, 0}, {0, 0}, {2, 2}));
  EXPECT_TRUE(point_on_segment({2, 2}, {0, 0}, {2, 2}));
  EXPECT_TRUE(point_on_segment({1, 1}, {0, 0}, {2, 2}));
  EXPECT_FALSE(point_on_segment({1, 1.0001}, {0, 0}, {2, 2}));
  EXPECT_FALSE(point_on_segment({3, 3}, {0, 0}, {2, 2}));  // collinear, outside
}

TEST(SegmentsIntersect, ProperCrossing) {
  EXPECT_TRUE(segments_intersect({0, 0}, {2, 2}, {0, 2}, {2, 0}));
}

TEST(SegmentsIntersect, EndpointTouch) {
  EXPECT_TRUE(segments_intersect({0, 0}, {1, 1}, {1, 1}, {2, 0}));
}

TEST(SegmentsIntersect, TTouch) {
  EXPECT_TRUE(segments_intersect({0, 0}, {2, 0}, {1, 0}, {1, 5}));
}

TEST(SegmentsIntersect, CollinearOverlap) {
  EXPECT_TRUE(segments_intersect({0, 0}, {2, 0}, {1, 0}, {3, 0}));
}

TEST(SegmentsIntersect, CollinearDisjoint) {
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 0}, {2, 0}, {3, 0}));
}

TEST(SegmentsIntersect, ParallelDisjoint) {
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 0}, {0, 1}, {1, 1}));
}

TEST(SegmentsIntersect, NearMiss) {
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 1}, {1.0001, 1.0001}, {2, 2}));
}

TEST(Distances, PointToPoint) {
  EXPECT_DOUBLE_EQ(squared_distance({0, 0}, {3, 4}), 25.0);
}

TEST(Distances, PointToSegmentProjectsInside) {
  EXPECT_DOUBLE_EQ(squared_distance_point_segment({1, 1}, {0, 0}, {2, 0}), 1.0);
}

TEST(Distances, PointToSegmentClampsToEndpoint) {
  EXPECT_DOUBLE_EQ(squared_distance_point_segment({-3, 4}, {0, 0}, {2, 0}), 25.0);
}

TEST(Distances, PointToDegenerateSegment) {
  EXPECT_DOUBLE_EQ(squared_distance_point_segment({3, 4}, {0, 0}, {0, 0}), 25.0);
}

TEST(Distances, SegmentsIntersectingIsZero) {
  EXPECT_EQ(squared_distance_segments({0, 0}, {2, 2}, {0, 2}, {2, 0}), 0.0);
}

TEST(Distances, ParallelSegments) {
  EXPECT_DOUBLE_EQ(squared_distance_segments({0, 0}, {2, 0}, {0, 1}, {2, 1}), 1.0);
}

TEST(PointInRing, SquareInsideOutsideBoundary) {
  const Ring square = {{0, 0}, {4, 0}, {4, 4}, {0, 4}, {0, 0}};
  EXPECT_EQ(point_in_ring({2, 2}, square), RingSide::kInside);
  EXPECT_EQ(point_in_ring({5, 2}, square), RingSide::kOutside);
  EXPECT_EQ(point_in_ring({0, 2}, square), RingSide::kBoundary);
  EXPECT_EQ(point_in_ring({4, 4}, square), RingSide::kBoundary);  // corner
  EXPECT_EQ(point_in_ring({2, 0}, square), RingSide::kBoundary);
}

TEST(PointInRing, ConcaveRing) {
  // A "U" shape: the notch is outside.
  const Ring u = {{0, 0}, {6, 0}, {6, 6}, {4, 6}, {4, 2}, {2, 2}, {2, 6}, {0, 6}, {0, 0}};
  EXPECT_EQ(point_in_ring({1, 3}, u), RingSide::kInside);   // left arm
  EXPECT_EQ(point_in_ring({5, 3}, u), RingSide::kInside);   // right arm
  EXPECT_EQ(point_in_ring({3, 4}, u), RingSide::kOutside);  // notch
  EXPECT_EQ(point_in_ring({3, 1}, u), RingSide::kInside);   // base
}

TEST(PointInRing, VertexRayGrazing) {
  // Point level with a vertex: the half-open crossing rule must count each
  // edge chain once.
  const Ring diamond = {{0, -2}, {2, 0}, {0, 2}, {-2, 0}, {0, -2}};
  EXPECT_EQ(point_in_ring({-1.0, 0.0}, diamond), RingSide::kInside);
  EXPECT_EQ(point_in_ring({-3.0, 0.0}, diamond), RingSide::kOutside);
  EXPECT_EQ(point_in_ring({3.0, 0.0}, diamond), RingSide::kOutside);
}

TEST(PointInPolygon, HoleSemantics) {
  const Polygon poly{{{0, 0}, {10, 0}, {10, 10}, {0, 10}, {0, 0}},
                     {{{3, 3}, {7, 3}, {7, 7}, {3, 7}, {3, 3}}}};
  EXPECT_TRUE(point_in_polygon({1, 1}, poly));    // inside shell
  EXPECT_FALSE(point_in_polygon({5, 5}, poly));   // inside hole
  EXPECT_TRUE(point_in_polygon({3, 5}, poly));    // on hole boundary: covered
  EXPECT_TRUE(point_in_polygon({0, 5}, poly));    // on shell boundary
  EXPECT_FALSE(point_in_polygon({11, 5}, poly));  // outside
}

TEST(LinestringsIntersectNaive, CrossAndMiss) {
  const LineString a{{{0, 0}, {5, 5}}};
  const LineString b{{{0, 5}, {5, 0}}};
  const LineString c{{{10, 10}, {11, 11}}};
  EXPECT_TRUE(linestrings_intersect_naive(a, b));
  EXPECT_FALSE(linestrings_intersect_naive(a, c));
}

TEST(PointToLinestring, MinOverSegments) {
  const LineString l{{{0, 0}, {10, 0}, {10, 10}}};
  EXPECT_DOUBLE_EQ(squared_distance_point_linestring({5, 3}, l), 9.0);
  EXPECT_DOUBLE_EQ(squared_distance_point_linestring({12, 5}, l), 4.0);
  EXPECT_EQ(squared_distance_point_linestring({10, 5}, l), 0.0);
}

// Property: pip via ray casting agrees with the winding obtained by testing
// against a convex polygon analytically (half-plane checks).
TEST(PointInRingProperty, ConvexPolygonAgreesWithHalfPlanes) {
  Rng rng(31337);
  // Regular octagon of radius 5 at origin.
  Ring ring;
  for (int i = 0; i < 8; ++i) {
    const double a = i * 3.14159265358979 / 4.0;
    ring.push_back({5 * std::cos(a), 5 * std::sin(a)});
  }
  ring.push_back(ring.front());

  for (int trial = 0; trial < 5000; ++trial) {
    const Coord p{rng.uniform(-7, 7), rng.uniform(-7, 7)};
    bool inside_by_halfplanes = true;
    bool on_boundary = false;
    for (std::size_t i = 0; i + 1 < ring.size(); ++i) {
      const double o = orientation(ring[i], ring[i + 1], p);
      if (o < 0) inside_by_halfplanes = false;
      if (o == 0 && point_on_segment(p, ring[i], ring[i + 1])) on_boundary = true;
    }
    const RingSide side = point_in_ring(p, ring);
    if (on_boundary) {
      EXPECT_EQ(side, RingSide::kBoundary);
    } else if (inside_by_halfplanes) {
      EXPECT_EQ(side, RingSide::kInside) << p.x << "," << p.y;
    } else {
      EXPECT_EQ(side, RingSide::kOutside) << p.x << "," << p.y;
    }
  }
}

// Property: segment intersection is symmetric in its arguments.
TEST(SegmentsIntersectProperty, Symmetric) {
  Rng rng(5150);
  for (int trial = 0; trial < 5000; ++trial) {
    const auto c = [&rng] { return Coord{rng.uniform(-3, 3), rng.uniform(-3, 3)}; };
    const Coord a1 = c(), a2 = c(), b1 = c(), b2 = c();
    EXPECT_EQ(segments_intersect(a1, a2, b1, b2), segments_intersect(b1, b2, a1, a2));
    EXPECT_EQ(segments_intersect(a1, a2, b1, b2), segments_intersect(a2, a1, b2, b1));
  }
}

// Property: squared_distance_segments is 0 iff segments_intersect.
TEST(SegmentDistanceProperty, ZeroIffIntersecting) {
  Rng rng(8086);
  for (int trial = 0; trial < 5000; ++trial) {
    const auto c = [&rng] { return Coord{rng.uniform(-3, 3), rng.uniform(-3, 3)}; };
    const Coord a1 = c(), a2 = c(), b1 = c(), b2 = c();
    const bool hit = segments_intersect(a1, a2, b1, b2);
    const double d2 = squared_distance_segments(a1, a2, b1, b2);
    EXPECT_EQ(hit, d2 == 0.0);
  }
}

}  // namespace
}  // namespace sjc::geom
