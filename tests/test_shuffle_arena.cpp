// ShuffleArena unit tests: chunk-chain bookkeeping, insertion order,
// take/refill round trips, reset reuse, move-only payloads, and the
// concurrency contract (fill single-threaded, drain distinct buckets from
// many threads). The concurrent tests double as the TSan smoke target.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "mapreduce/shuffle_arena.hpp"

namespace sjc::mapreduce {
namespace {

TEST(ShuffleArena, PreservesInsertionOrderPerBucket) {
  ShuffleArena<int> arena(/*chunk_capacity=*/4);
  arena.reset(3);
  // Interleave pushes so every bucket's chain is built out of
  // non-contiguous chunks.
  for (int i = 0; i < 100; ++i) arena.push(i % 3, i);
  EXPECT_EQ(arena.bucket_count(), 3u);
  EXPECT_EQ(arena.bucket_size(0), 34u);
  EXPECT_EQ(arena.bucket_size(1), 33u);
  EXPECT_EQ(arena.bucket_size(2), 33u);
  EXPECT_EQ(arena.total_size(), 100u);
  for (std::size_t b = 0; b < 3; ++b) {
    std::vector<int> got;
    arena.consume(b, [&got](int& v) { got.push_back(v); });
    ASSERT_EQ(got.size(), b == 0 ? 34u : 33u);
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], static_cast<int>(3 * i + b));
    }
  }
  EXPECT_EQ(arena.total_size(), 0u);
}

TEST(ShuffleArena, ConsumeLeavesBucketEmptyAndReusable) {
  ShuffleArena<std::string> arena(2);
  arena.reset(2);
  arena.push(0, "a");
  arena.push(0, "b");
  arena.push(1, "c");
  arena.consume(0, [](std::string&) {});
  EXPECT_EQ(arena.bucket_size(0), 0u);
  EXPECT_EQ(arena.bucket_size(1), 1u);
  // A consumed bucket accepts new pushes (fresh chain).
  arena.push(0, "d");
  std::vector<std::string> got;
  arena.consume(0, [&got](std::string& s) { got.push_back(std::move(s)); });
  EXPECT_EQ(got, std::vector<std::string>({"d"}));
}

TEST(ShuffleArena, TakeAndRefillRoundTrip) {
  ShuffleArena<int> arena(8);
  arena.reset(2);
  for (int i = 0; i < 50; ++i) arena.push(1, i);
  std::vector<int> taken = arena.take_bucket(1);
  ASSERT_EQ(taken.size(), 50u);
  EXPECT_EQ(arena.bucket_size(1), 0u);
  std::sort(taken.rbegin(), taken.rend());
  arena.refill(1, std::move(taken));
  EXPECT_EQ(arena.bucket_size(1), 50u);
  std::vector<int> got;
  arena.consume(1, [&got](int& v) { got.push_back(v); });
  EXPECT_EQ(got.front(), 49);
  EXPECT_EQ(got.back(), 0);
}

TEST(ShuffleArena, ResetDropsAllState) {
  ShuffleArena<int> arena(4);
  arena.reset(5);
  for (int i = 0; i < 40; ++i) arena.push(i % 5, i);
  arena.reset(2);
  EXPECT_EQ(arena.bucket_count(), 2u);
  EXPECT_EQ(arena.total_size(), 0u);
  arena.push(0, 7);
  std::vector<int> got;
  arena.consume(0, [&got](int& v) { got.push_back(v); });
  EXPECT_EQ(got, std::vector<int>({7}));
}

TEST(ShuffleArena, MoveOnlyPayloads) {
  ShuffleArena<std::unique_ptr<int>> arena(3);
  arena.reset(1);
  for (int i = 0; i < 10; ++i) arena.push(0, std::make_unique<int>(i));
  int sum = 0;
  arena.consume(0, [&sum](std::unique_ptr<int>& p) {
    const std::unique_ptr<int> taken = std::move(p);
    sum += *taken;
  });
  EXPECT_EQ(sum, 45);
}

TEST(ShuffleArena, DistinctBucketsDrainConcurrently) {
  // The map/reduce handoff: one thread fills, then reducer threads drain
  // disjoint buckets concurrently. Run under TSan in the CI smoke job.
  constexpr std::size_t kBuckets = 16;
  constexpr int kItems = 20000;
  ShuffleArena<int> arena(64);
  arena.reset(kBuckets);
  std::int64_t pushed = 0;
  for (int i = 0; i < kItems; ++i) {
    arena.push(static_cast<std::size_t>(i) % kBuckets, i);
    pushed += i;
  }
  std::vector<std::int64_t> sums(kBuckets, 0);
  {
    std::vector<std::thread> threads;
    threads.reserve(kBuckets);
    for (std::size_t b = 0; b < kBuckets; ++b) {
      threads.emplace_back([&arena, &sums, b] {
        arena.consume(b, [&sums, b](int& v) { sums[b] += v; });
      });
    }
    for (auto& t : threads) t.join();
  }
  EXPECT_EQ(std::accumulate(sums.begin(), sums.end(), std::int64_t{0}), pushed);
  EXPECT_EQ(arena.total_size(), 0u);
}

TEST(ShuffleArena, TwoArenasFillAndDrainConcurrently) {
  // Two concurrent map tasks, each with a private arena (the simulator's
  // actual shape: arenas are per-task, only bucket drains cross threads).
  constexpr int kItems = 30000;
  auto job = [](std::int64_t* out) {
    ShuffleArena<std::string> arena;
    arena.reset(8);
    for (int i = 0; i < kItems; ++i) {
      arena.push(static_cast<std::size_t>(i) % 8, std::to_string(i));
    }
    std::int64_t bytes = 0;
    for (std::size_t b = 0; b < 8; ++b) {
      arena.consume(b, [&bytes](std::string& s) {
        bytes += static_cast<std::int64_t>(s.size());
      });
    }
    *out = bytes;
  };
  std::int64_t bytes_a = 0;
  std::int64_t bytes_b = 0;
  {
    std::thread ta(job, &bytes_a);
    std::thread tb(job, &bytes_b);
    ta.join();
    tb.join();
  }
  EXPECT_GT(bytes_a, 0);
  EXPECT_EQ(bytes_a, bytes_b);
}

}  // namespace
}  // namespace sjc::mapreduce
