// Unit + property tests for Envelope, the MBR workhorse of every filter
// phase.
#include <gtest/gtest.h>

#include "geom/envelope.hpp"
#include "util/rng.hpp"

namespace sjc::geom {
namespace {

TEST(Envelope, DefaultIsEmpty) {
  Envelope e;
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.width(), 0.0);
  EXPECT_EQ(e.height(), 0.0);
  EXPECT_EQ(e.area(), 0.0);
}

TEST(Envelope, EmptyNeverIntersects) {
  Envelope empty;
  const Envelope unit(0, 0, 1, 1);
  EXPECT_FALSE(empty.intersects(unit));
  EXPECT_FALSE(unit.intersects(empty));
  EXPECT_FALSE(empty.contains(0.5, 0.5));
}

TEST(Envelope, ExpandToIncludePoint) {
  Envelope e;
  e.expand_to_include(3.0, -2.0);
  EXPECT_FALSE(e.empty());
  EXPECT_EQ(e.min_x(), 3.0);
  EXPECT_EQ(e.max_x(), 3.0);
  EXPECT_EQ(e.min_y(), -2.0);
  e.expand_to_include(-1.0, 5.0);
  EXPECT_EQ(e.min_x(), -1.0);
  EXPECT_EQ(e.max_y(), 5.0);
}

TEST(Envelope, ContainsIsInclusive) {
  const Envelope e(0, 0, 2, 2);
  EXPECT_TRUE(e.contains(0.0, 0.0));
  EXPECT_TRUE(e.contains(2.0, 2.0));
  EXPECT_TRUE(e.contains(1.0, 1.0));
  EXPECT_FALSE(e.contains(2.0001, 1.0));
}

TEST(Envelope, IntersectsIsInclusiveOnEdges) {
  const Envelope a(0, 0, 1, 1);
  const Envelope b(1, 1, 2, 2);  // corner touch
  EXPECT_TRUE(a.intersects(b));
  const Envelope c(1, 0, 2, 1);  // edge touch
  EXPECT_TRUE(a.intersects(c));
  const Envelope d(1.001, 0, 2, 1);
  EXPECT_FALSE(a.intersects(d));
}

TEST(Envelope, IntersectionOfDisjointIsEmpty) {
  const Envelope a(0, 0, 1, 1);
  const Envelope b(5, 5, 6, 6);
  EXPECT_TRUE(a.intersection(b).empty());
}

TEST(Envelope, IntersectionOfOverlapping) {
  const Envelope a(0, 0, 2, 2);
  const Envelope b(1, 1, 3, 3);
  const Envelope i = a.intersection(b);
  EXPECT_EQ(i, Envelope(1, 1, 2, 2));
}

TEST(Envelope, MergedCoversBoth) {
  const Envelope a(0, 0, 1, 1);
  const Envelope b(5, -1, 6, 0.5);
  const Envelope m = a.merged(b);
  EXPECT_TRUE(m.contains(a));
  EXPECT_TRUE(m.contains(b));
}

TEST(Envelope, DistanceZeroWhenIntersecting) {
  const Envelope a(0, 0, 2, 2);
  const Envelope b(1, 1, 3, 3);
  EXPECT_EQ(a.distance(b), 0.0);
}

TEST(Envelope, DistanceAxisAligned) {
  const Envelope a(0, 0, 1, 1);
  const Envelope b(3, 0, 4, 1);
  EXPECT_DOUBLE_EQ(a.distance(b), 2.0);
}

TEST(Envelope, DistanceDiagonal) {
  const Envelope a(0, 0, 1, 1);
  const Envelope b(4, 5, 6, 7);
  EXPECT_DOUBLE_EQ(a.distance(b), 5.0);  // 3-4-5 triangle
}

TEST(Envelope, ExpandedByGrowsAllSides) {
  const Envelope e(0, 0, 1, 1);
  const Envelope g = e.expanded_by(0.5);
  EXPECT_EQ(g, Envelope(-0.5, -0.5, 1.5, 1.5));
}

TEST(Envelope, MarginIsHalfPerimeter) {
  const Envelope e(0, 0, 3, 4);
  EXPECT_DOUBLE_EQ(e.margin(), 7.0);
}

TEST(Envelope, CenterOfPointEnvelope) {
  const Envelope e = Envelope::of_point(2.0, -3.0);
  EXPECT_EQ(e.center_x(), 2.0);
  EXPECT_EQ(e.center_y(), -3.0);
  EXPECT_FALSE(e.empty());
  EXPECT_EQ(e.area(), 0.0);
}

// Property: intersects is symmetric and consistent with intersection().
TEST(EnvelopeProperty, IntersectsSymmetricAndConsistent) {
  Rng rng(2024);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto random_env = [&rng] {
      const double x1 = rng.uniform(-10, 10);
      const double x2 = rng.uniform(-10, 10);
      const double y1 = rng.uniform(-10, 10);
      const double y2 = rng.uniform(-10, 10);
      return Envelope(std::min(x1, x2), std::min(y1, y2), std::max(x1, x2),
                      std::max(y1, y2));
    };
    const Envelope a = random_env();
    const Envelope b = random_env();
    EXPECT_EQ(a.intersects(b), b.intersects(a));
    // Touching envelopes intersect with a degenerate (zero-area, non-empty)
    // intersection.
    EXPECT_EQ(a.intersects(b), !a.intersection(b).empty());
    if (a.intersects(b)) {
      EXPECT_TRUE(a.contains(a.intersection(b)));
      EXPECT_TRUE(b.contains(a.intersection(b)));
      EXPECT_EQ(a.distance(b), 0.0);
    } else {
      EXPECT_GT(a.distance(b), 0.0);
    }
  }
}

// Property: merged envelope is the smallest envelope containing both.
TEST(EnvelopeProperty, MergedIsTight) {
  Rng rng(77);
  for (int trial = 0; trial < 1000; ++trial) {
    Envelope a(rng.uniform(-5, 0), rng.uniform(-5, 0), rng.uniform(0, 5),
               rng.uniform(0, 5));
    Envelope b(rng.uniform(-5, 0), rng.uniform(-5, 0), rng.uniform(0, 5),
               rng.uniform(0, 5));
    const Envelope m = a.merged(b);
    EXPECT_EQ(m.min_x(), std::min(a.min_x(), b.min_x()));
    EXPECT_EQ(m.max_x(), std::max(a.max_x(), b.max_x()));
    EXPECT_EQ(m.min_y(), std::min(a.min_y(), b.min_y()));
    EXPECT_EQ(m.max_y(), std::max(a.max_y(), b.max_y()));
  }
}

}  // namespace
}  // namespace sjc::geom
