// Tests for the prepared-geometry (bind result) cache shared across
// partition pairs by the local-join kernel.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "geom/batch_refine.hpp"
#include "geom/prepared_cache.hpp"
#include "util/status.hpp"

namespace sjc::geom {
namespace {

Geometry square(double x, double y, double side = 1.0) {
  return Geometry::polygon(
      {{x, y}, {x + side, y}, {x + side, y + side}, {x, y + side}, {x, y}});
}

TEST(PreparedCache, MissThenHit) {
  PreparedCache cache;
  const auto& engine = GeometryEngine::prepared();
  const Geometry g = square(0, 0, 4);

  const auto first = cache.acquire(engine, 7, g);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.size(), 1u);

  const auto second = cache.acquire(engine, 7, g);
  EXPECT_EQ(second.get(), first.get());  // same bound predicate shared
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);

  // The handle works like a direct bind().
  EXPECT_TRUE(first->intersects(Geometry::point(2, 2)));
  EXPECT_FALSE(first->intersects(Geometry::point(9, 9)));
}

TEST(PreparedCache, HandleOutlivesSourceGeometry) {
  PreparedCache cache;
  const auto& engine = GeometryEngine::prepared();
  std::shared_ptr<const BoundPredicate> handle;
  {
    const Geometry transient = square(0, 0, 4);
    handle = cache.acquire(engine, 1, transient);
  }  // source destroyed; the cache's owned copy must keep the handle valid
  EXPECT_TRUE(handle->contains(Geometry::point(1, 1)));
}

TEST(PreparedCache, CapacityEvictsLeastRecentlyUsed) {
  PreparedCache cache(/*capacity=*/2);
  const auto& engine = GeometryEngine::prepared();
  const auto g0 = square(0, 0);
  const auto g1 = square(10, 0);
  const auto g2 = square(20, 0);

  cache.acquire(engine, 0, g0);
  cache.acquire(engine, 1, g1);
  cache.acquire(engine, 0, g0);  // bump 0: id 1 is now LRU
  const auto held = cache.acquire(engine, 1, g1);  // bump 1: id 0 is now LRU
  cache.acquire(engine, 2, g2);  // evicts id 0
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);

  // Id 0 was evicted (re-acquire misses), ids 1 and 2 still hit.
  const auto h = cache.hits();
  const auto m = cache.misses();
  cache.acquire(engine, 1, g1);
  cache.acquire(engine, 2, g2);
  EXPECT_EQ(cache.hits(), h + 2);
  cache.acquire(engine, 0, g0);
  EXPECT_EQ(cache.misses(), m + 1);

  // The handle acquired before the eviction churn stays valid throughout.
  EXPECT_TRUE(held->intersects(Geometry::point(10.5, 0.5)));
}

TEST(PreparedCache, RejectsZeroCapacity) {
  EXPECT_THROW(PreparedCache(0), InvalidArgument);
}

TEST(PreparedCache, ClearResetsEntriesButKeepsCounters) {
  PreparedCache cache;
  const auto& engine = GeometryEngine::prepared();
  cache.acquire(engine, 3, square(0, 0));
  cache.acquire(engine, 3, square(0, 0));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 1u);
  cache.acquire(engine, 3, square(0, 0));
  EXPECT_EQ(cache.misses(), 2u);
}

// Two threads hammer a small cache with overlapping id ranges so hits,
// racing misses on the same id, and evictions all interleave. Run under
// the ASan/UBSan CI job (and TSan where enabled) this exercises the
// locking; the assertions check the accounting stays consistent.
TEST(PreparedCache, TwoThreadHammer) {
  PreparedCache cache(/*capacity=*/8);
  const auto& engine = GeometryEngine::prepared();
  constexpr int kRounds = 2000;
  constexpr std::uint64_t kIds = 16;

  std::vector<Geometry> geoms;
  for (std::uint64_t id = 0; id < kIds; ++id) {
    geoms.push_back(square(static_cast<double>(id) * 10.0, 0, 4));
  }

  auto worker = [&](std::uint64_t stride) {
    for (int i = 0; i < kRounds; ++i) {
      const std::uint64_t id = (static_cast<std::uint64_t>(i) * stride) % kIds;
      const auto bound = cache.acquire(engine, id, geoms[id]);
      ASSERT_NE(bound, nullptr);
      // Probe the centre of the square this id maps to: a handle for the
      // wrong geometry (torn entry) would fail this.
      const double cx = static_cast<double>(id) * 10.0 + 2.0;
      ASSERT_TRUE(bound->contains(Geometry::point(cx, 2.0)));
    }
  };
  std::thread a(worker, 3);
  std::thread b(worker, 5);
  a.join();
  b.join();

  EXPECT_EQ(cache.hits() + cache.misses(), 2u * kRounds);
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_LE(cache.size(), 8u);
}

// The serving configuration: one cache shared by many queries, some binding
// per-pair predicates (acquire) and some building batch refiners
// (acquire_refiner) for the SAME ids concurrently. Four threads interleave
// both lookup kinds over overlapping id ranges through LRU churn; run under
// the TSan CI job this is the shared-cache race check. The invariant the
// counters must keep under any interleaving: hits + misses == lookups.
TEST(PreparedCache, SharedCacheMixedSlotHammer) {
  PreparedCache cache(/*capacity=*/8);
  const auto& engine = GeometryEngine::prepared();
  constexpr int kRounds = 1500;
  constexpr std::uint64_t kIds = 16;

  std::vector<Geometry> geoms;
  for (std::uint64_t id = 0; id < kIds; ++id) {
    geoms.push_back(square(static_cast<double>(id) * 10.0, 0, 4));
  }

  auto bind_worker = [&](std::uint64_t stride) {
    for (int i = 0; i < kRounds; ++i) {
      const std::uint64_t id = (static_cast<std::uint64_t>(i) * stride) % kIds;
      const auto bound = cache.acquire(engine, id, geoms[id]);
      ASSERT_NE(bound, nullptr);
      const double cx = static_cast<double>(id) * 10.0 + 2.0;
      ASSERT_TRUE(bound->contains(Geometry::point(cx, 2.0)));
    }
  };
  auto refiner_worker = [&](std::uint64_t stride) {
    RefineStats stats;
    for (int i = 0; i < kRounds; ++i) {
      const std::uint64_t id = (static_cast<std::uint64_t>(i) * stride) % kIds;
      const auto refiner = cache.acquire_refiner(id, geoms[id]);
      ASSERT_NE(refiner, nullptr);
      // A refiner built from a torn entry (or bound against the wrong
      // geometry copy) would answer the centre probe wrong.
      const double cx = static_cast<double>(id) * 10.0 + 2.0;
      ASSERT_TRUE(refiner->intersects(Geometry::point(cx, 2.0), stats));
    }
  };

  std::thread a(bind_worker, 3);
  std::thread b(bind_worker, 7);
  std::thread c(refiner_worker, 5);
  std::thread d(refiner_worker, 11);
  a.join();
  b.join();
  c.join();
  d.join();

  // Counter balance under concurrency — the serving-mode invariant.
  EXPECT_EQ(cache.lookups(), 4u * kRounds);
  EXPECT_EQ(cache.hits() + cache.misses(), cache.lookups());
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_LE(cache.size(), 8u);
}

}  // namespace
}  // namespace sjc::geom
