// Fault injection and recovery: injector determinism, failure-aware
// scheduling (retries, backoff, speculation), SimDfs datanode loss and
// re-replication, and end-to-end recovery on the simulated systems.
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/fault_injector.hpp"
#include "cluster/scheduler.hpp"
#include "core/spatial_join.hpp"
#include "dfs/sim_dfs.hpp"
#include "mapreduce/mr_context.hpp"
#include "systems/hadoopgis/hadoop_gis.hpp"
#include "systems/spatialhadoop/spatial_hadoop.hpp"
#include "systems/spatialspark/spatial_spark.hpp"
#include "util/status.hpp"
#include "workload/generators.hpp"

namespace sjc {
namespace {

// ---------------------------------------------------------------------------
// FaultInjector: validation, determinism, recovery arithmetic
// ---------------------------------------------------------------------------

TEST(FaultInjector, DefaultPlanIsTrivialAndInert) {
  cluster::FaultPlan plan;
  EXPECT_TRUE(plan.trivial());
  const cluster::FaultInjector faults(plan);
  for (std::size_t task = 0; task < 8; ++task) {
    EXPECT_FALSE(faults.crashes(1, task, 1));
    EXPECT_DOUBLE_EQ(1.0, faults.slowdown(1, task));
  }
  EXPECT_DOUBLE_EQ(1.0, faults.capacity_factor(1));
}

TEST(FaultInjector, RejectsMalformedPlans) {
  {
    cluster::FaultPlan plan;
    plan.task_crash_probability = 1.0;  // certain crash: no attempt can succeed
    EXPECT_THROW(cluster::FaultInjector{plan}, InvalidArgument);
  }
  {
    cluster::FaultPlan plan;
    plan.straggler_slowdown = 0.5;
    EXPECT_THROW(cluster::FaultInjector{plan}, InvalidArgument);
  }
  {
    cluster::FaultPlan plan;
    plan.max_attempts = 0;
    EXPECT_THROW(cluster::FaultInjector{plan}, InvalidArgument);
  }
}

TEST(FaultInjector, SameSeedSameDecisions) {
  cluster::FaultPlan plan;
  plan.seed = 1234;
  plan.task_crash_probability = 0.5;
  plan.straggler_probability = 0.5;
  plan.straggler_slowdown = 3.0;
  const cluster::FaultInjector a(plan);
  const cluster::FaultInjector b(plan);
  plan.seed = 1235;
  const cluster::FaultInjector c(plan);

  bool seed_changes_something = false;
  for (std::uint64_t phase = 0; phase < 4; ++phase) {
    for (std::size_t task = 0; task < 16; ++task) {
      EXPECT_EQ(a.slowdown(phase, task), b.slowdown(phase, task));
      for (std::uint32_t attempt = 1; attempt <= 3; ++attempt) {
        EXPECT_EQ(a.crashes(phase, task, attempt), b.crashes(phase, task, attempt));
        EXPECT_EQ(a.crash_fraction(phase, task, attempt),
                  b.crash_fraction(phase, task, attempt));
        if (a.crashes(phase, task, attempt) != c.crashes(phase, task, attempt)) {
          seed_changes_something = true;
        }
      }
    }
  }
  EXPECT_TRUE(seed_changes_something);
}

TEST(FaultInjector, BackoffAndHeadroomArithmetic) {
  cluster::FaultPlan plan;
  plan.retry_backoff_s = 2.0;
  plan.pipe_retry_headroom = 0.5;
  const cluster::FaultInjector faults(plan);
  EXPECT_DOUBLE_EQ(2.0, faults.backoff_s(1));
  EXPECT_DOUBLE_EQ(4.0, faults.backoff_s(2));
  EXPECT_DOUBLE_EQ(8.0, faults.backoff_s(3));
  EXPECT_DOUBLE_EQ(1.0, faults.capacity_factor(1));
  EXPECT_DOUBLE_EQ(1.5, faults.capacity_factor(2));
  EXPECT_DOUBLE_EQ(2.5, faults.capacity_factor(4));
}

TEST(FaultInjector, DatanodeLossesAreSortedAndWindowed) {
  cluster::FaultPlan plan;
  plan.datanode_losses = {{10.0, 2}, {5.0, 1}};
  const cluster::FaultInjector faults(plan);
  ASSERT_EQ(2u, faults.plan().datanode_losses.size());
  EXPECT_DOUBLE_EQ(5.0, faults.plan().datanode_losses[0].time_s);

  const auto early = faults.losses_due(7.0, 0);
  ASSERT_EQ(1u, early.size());
  EXPECT_EQ(1u, early[0].node);
  const auto late = faults.losses_due(20.0, 1);
  ASSERT_EQ(1u, late.size());
  EXPECT_EQ(2u, late[0].node);
  EXPECT_TRUE(faults.losses_due(20.0, 2).empty());
}

// ---------------------------------------------------------------------------
// Failure-aware scheduling
// ---------------------------------------------------------------------------

TEST(FaultySchedule, LptRejectsZeroSlots) {
  EXPECT_THROW(cluster::lpt_schedule_makespan({1.0}, 0), InvalidArgument);
}

TEST(FaultySchedule, TrivialPlanMatchesPlainSchedule) {
  const std::vector<double> durations = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  const cluster::FaultInjector faults{cluster::FaultPlan{}};
  const auto outcome = cluster::list_schedule_makespan(durations, 3, faults, 17);
  // Bit-identical to the plain path: a trivial plan must not perturb the
  // seed timings.
  EXPECT_EQ(cluster::list_schedule_makespan(durations, 3), outcome.makespan);
  EXPECT_TRUE(outcome.success);
  EXPECT_EQ(durations.size(), outcome.attempts);
  EXPECT_EQ(1u, outcome.max_attempts_used);
  EXPECT_EQ(0u, outcome.speculative_clones);
  EXPECT_DOUBLE_EQ(0.0, outcome.wasted_seconds);
}

TEST(FaultySchedule, RetryRecoversPipeOverflow) {
  const std::vector<double> durations = {10.0, 10.0, 10.0, 10.0};
  const std::vector<double> severity = {1.3, 0.0, 0.0, 0.0};

  cluster::FaultPlan fatal;  // max_attempts = 1: first overflow kills the phase
  const auto dead = cluster::list_schedule_makespan(
      durations, 4, cluster::FaultInjector{fatal}, 17, &severity);
  EXPECT_FALSE(dead.success);
  EXPECT_EQ(0u, dead.first_failed_task);

  cluster::FaultPlan plan;
  plan.max_attempts = 4;
  plan.pipe_retry_headroom = 0.5;  // attempt 2 tolerates 1.5x > 1.3
  const auto recovered = cluster::list_schedule_makespan(
      durations, 4, cluster::FaultInjector{plan}, 17, &severity);
  EXPECT_TRUE(recovered.success);
  EXPECT_EQ(durations.size() + 1, recovered.attempts);
  EXPECT_EQ(2u, recovered.max_attempts_used);
  EXPECT_GT(recovered.wasted_seconds, 0.0);

  const auto clean = cluster::list_schedule_makespan(
      durations, 4, cluster::FaultInjector{plan}, 17, nullptr);
  EXPECT_GT(recovered.makespan, clean.makespan);
}

TEST(FaultySchedule, OverflowBeyondHeadroomStaysFatal) {
  const std::vector<double> durations = {10.0};
  const std::vector<double> severity = {5.0};  // cap factor at attempt 4 is 2.5
  cluster::FaultPlan plan;
  plan.max_attempts = 4;
  const auto outcome = cluster::list_schedule_makespan(
      durations, 2, cluster::FaultInjector{plan}, 17, &severity);
  EXPECT_FALSE(outcome.success);
  EXPECT_EQ(0u, outcome.first_failed_task);
  EXPECT_EQ(4u, outcome.max_attempts_used);
  EXPECT_EQ(4u, outcome.attempts);
}

TEST(FaultySchedule, InjectedCrashesRetryDeterministically) {
  std::vector<double> durations(12, 2.0);
  cluster::FaultPlan plan;
  plan.seed = 77;
  plan.task_crash_probability = 0.4;
  plan.max_attempts = 8;

  const auto a = cluster::list_schedule_makespan(durations, 4,
                                                 cluster::FaultInjector{plan}, 23);
  const auto b = cluster::list_schedule_makespan(durations, 4,
                                                 cluster::FaultInjector{plan}, 23);
  EXPECT_TRUE(a.success);
  EXPECT_GT(a.attempts, durations.size());  // some crash happened at p=0.4
  EXPECT_GT(a.wasted_seconds, 0.0);
  // Same seed, same plan: bit-identical outcome.
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.wasted_seconds, b.wasted_seconds);

  const auto clean = cluster::list_schedule_makespan(
      durations, 4, cluster::FaultInjector{cluster::FaultPlan{}}, 23);
  EXPECT_GT(a.makespan, clean.makespan);

  plan.seed = 78;
  const auto c = cluster::list_schedule_makespan(durations, 4,
                                                 cluster::FaultInjector{plan}, 23);
  EXPECT_TRUE(a.attempts != c.attempts || a.makespan != c.makespan);
}

TEST(FaultySchedule, SpeculationCutsStragglerTail) {
  const std::vector<double> durations = {1.0, 1.0, 1.0, 1.0};
  cluster::FaultPlan plan;
  plan.straggler_probability = 1.0;
  plan.straggler_slowdown = 4.0;

  const auto slow = cluster::list_schedule_makespan(durations, 8,
                                                    cluster::FaultInjector{plan}, 5);
  EXPECT_TRUE(slow.success);
  EXPECT_DOUBLE_EQ(4.0, slow.makespan);

  plan.speculative_execution = true;
  plan.speculation_threshold = 1.5;
  const auto spec = cluster::list_schedule_makespan(durations, 8,
                                                    cluster::FaultInjector{plan}, 5);
  EXPECT_TRUE(spec.success);
  // Clone launches at 1.5x the healthy median and runs at full speed:
  // finishes at 2.5 while the straggling original would take 4.0.
  EXPECT_DOUBLE_EQ(2.5, spec.makespan);
  EXPECT_EQ(durations.size(), spec.speculative_clones);
  EXPECT_GT(spec.wasted_seconds, 0.0);
  EXPECT_LT(spec.makespan, slow.makespan);
}

TEST(FaultySchedule, RetriedAttemptNeverSpeculates) {
  // A task that already crashed is handled by the retry chain; only a clean
  // first-attempt straggler may spawn a speculative clone. Find a seed whose
  // attempt 1 crashes and attempt 2 succeeds, with everything else arranged
  // so that speculation WOULD trigger on a clean run (certain straggler far
  // beyond the threshold).
  const std::vector<double> durations = {1.0};
  cluster::FaultPlan plan;
  plan.task_crash_probability = 0.5;
  plan.max_attempts = 4;
  plan.straggler_probability = 1.0;
  plan.straggler_slowdown = 8.0;
  plan.speculative_execution = true;
  plan.speculation_threshold = 1.5;

  constexpr std::uint64_t kPhase = 7;
  std::uint64_t crashing_seed = 0;
  std::uint64_t clean_seed = 0;
  for (std::uint64_t s = 1; s < 4096 && (crashing_seed == 0 || clean_seed == 0);
       ++s) {
    plan.seed = s;
    const cluster::FaultInjector probe(plan);
    if (crashing_seed == 0 && probe.crashes(kPhase, 0, 1) &&
        !probe.crashes(kPhase, 0, 2)) {
      crashing_seed = s;
    }
    if (clean_seed == 0 && !probe.crashes(kPhase, 0, 1)) clean_seed = s;
  }
  ASSERT_NE(0u, crashing_seed);
  ASSERT_NE(0u, clean_seed);

  // Control: without the crash the straggler does speculate.
  plan.seed = clean_seed;
  const auto speculated = cluster::list_schedule_makespan(
      durations, 4, cluster::FaultInjector{plan}, kPhase);
  EXPECT_TRUE(speculated.success);
  EXPECT_EQ(1u, speculated.speculative_clones);

  // The retried task never does, no matter how badly it straggles.
  plan.seed = crashing_seed;
  std::vector<cluster::ScheduledAttempt> attempts;
  const auto retried = cluster::list_schedule_makespan(
      durations, 4, cluster::FaultInjector{plan}, kPhase, nullptr, &attempts);
  EXPECT_TRUE(retried.success);
  EXPECT_EQ(0u, retried.speculative_clones);
  EXPECT_EQ(2u, retried.attempts);  // crash + successful retry, no clone
  EXPECT_EQ(2u, retried.max_attempts_used);
  ASSERT_EQ(2u, attempts.size());
  EXPECT_EQ(trace::SpanOutcome::kFailed, attempts[0].outcome);
  EXPECT_EQ(trace::SpanOutcome::kOk, attempts[1].outcome);
  EXPECT_EQ(2u, attempts[1].attempt);
  EXPECT_FALSE(attempts[1].speculative);
}

TEST(FaultySchedule, LosingCloneChargesConsistentWaste) {
  // Slowdown 1.6 with threshold 1.5: the clone launches at t=1.5 but the
  // straggling primary still finishes first at t=1.6. The clone is killed,
  // its 0.1s of work wasted-but-charged, and the accounting must agree with
  // the emitted spans.
  const std::vector<double> durations = {1.0, 1.0, 1.0, 1.0};
  cluster::FaultPlan plan;
  plan.straggler_probability = 1.0;
  plan.straggler_slowdown = 1.6;
  plan.speculative_execution = true;
  plan.speculation_threshold = 1.5;

  std::vector<cluster::ScheduledAttempt> attempts;
  const auto outcome = cluster::list_schedule_makespan(
      durations, 8, cluster::FaultInjector{plan}, 5, nullptr, &attempts);
  EXPECT_TRUE(outcome.success);
  EXPECT_DOUBLE_EQ(1.6, outcome.makespan);  // primary wins, clone never helps
  EXPECT_EQ(durations.size(), outcome.speculative_clones);
  EXPECT_EQ(2 * durations.size(), outcome.attempts);
  EXPECT_DOUBLE_EQ(4.0 * (1.6 - 1.5), outcome.wasted_seconds);

  // Span view of the same story: per task, a winning primary over [0, 1.6]
  // and a killed clone over [1.5, 1.6].
  ASSERT_EQ(2 * durations.size(), attempts.size());
  std::size_t winners = 0;
  std::size_t losers = 0;
  double span_waste = 0.0;
  for (const auto& a : attempts) {
    if (a.outcome == trace::SpanOutcome::kOk) {
      ++winners;
      EXPECT_FALSE(a.speculative);
      EXPECT_EQ(1u, a.attempt);
      EXPECT_DOUBLE_EQ(0.0, a.start);
      EXPECT_DOUBLE_EQ(1.6, a.end);
    } else {
      ASSERT_EQ(trace::SpanOutcome::kSpeculativeLoser, a.outcome);
      ++losers;
      EXPECT_TRUE(a.speculative);
      EXPECT_EQ(2u, a.attempt);
      EXPECT_DOUBLE_EQ(1.5, a.start);
      EXPECT_DOUBLE_EQ(1.6, a.end);
      span_waste += a.end - a.start;
    }
  }
  EXPECT_EQ(durations.size(), winners);
  EXPECT_EQ(durations.size(), losers);
  EXPECT_DOUBLE_EQ(outcome.wasted_seconds, span_waste);
}

// ---------------------------------------------------------------------------
// SimDfs: datanode loss, re-replication, block unavailability
// ---------------------------------------------------------------------------

dfs::DfsConfig failover_dfs() {
  dfs::DfsConfig config;
  config.block_size = 100;
  config.replication = 2;
  config.datanode_count = 4;
  config.seed = 1;
  return config;
}

TEST(SimDfsFailure, RereplicationSurvivesSingleLoss) {
  dfs::SimDfs fs(failover_dfs());
  fs.put("f", std::string("payload"), 350);  // 4 blocks
  ASSERT_EQ(4u, fs.block_count("f"));

  const auto repair = fs.fail_datanode(0);
  EXPECT_FALSE(fs.node_alive(0));
  EXPECT_EQ(3u, fs.live_datanode_count());
  EXPECT_EQ(0u, repair.blocks_lost);
  EXPECT_GT(repair.under_replicated, 0u);
  EXPECT_GT(repair.bytes_rereplicated, 0u);
  // Each re-replicated block is read from a survivor, shipped, written.
  EXPECT_EQ(repair.bytes_rereplicated, repair.cost.disk_read);
  EXPECT_EQ(repair.bytes_rereplicated, repair.cost.disk_write);
  EXPECT_EQ(repair.bytes_rereplicated, repair.cost.network);

  // The file reads fine and every block is back at full replication on
  // live nodes only.
  EXPECT_FALSE(fs.lost("f"));
  EXPECT_EQ("payload", fs.get<std::string>("f"));
  for (const auto& block : fs.meta("f").blocks) {
    EXPECT_EQ(2u, block.replica_nodes.size());
    for (const auto node : block.replica_nodes) EXPECT_TRUE(fs.node_alive(node));
  }
}

TEST(SimDfsFailure, RefailingADeadNodeIsANoOp) {
  dfs::SimDfs fs(failover_dfs());
  fs.put("f", std::string("payload"), 350);
  fs.fail_datanode(0);
  const auto repeat = fs.fail_datanode(0);
  EXPECT_EQ(0u, repeat.blocks_lost);
  EXPECT_EQ(0u, repeat.under_replicated);
  EXPECT_EQ(0u, repeat.bytes_rereplicated);
}

TEST(SimDfsFailure, LosingEveryReplicaThrowsBlockUnavailable) {
  dfs::SimDfs fs(failover_dfs());
  fs.put("f", std::string("payload"), 350);
  fs.fail_datanode(0);
  fs.fail_datanode(1);
  fs.fail_datanode(2);
  // Down to one node every block has exactly one replica; killing it loses
  // the data for good.
  EXPECT_EQ("payload", fs.get<std::string>("f"));
  const auto repair = fs.fail_datanode(3);
  EXPECT_GT(repair.blocks_lost, 0u);
  EXPECT_TRUE(fs.lost("f"));
  EXPECT_TRUE(fs.exists("f"));
  EXPECT_THROW(fs.get<std::string>("f"), BlockUnavailable);
}

TEST(SimDfsFailure, MrContextAppliesScheduledLossAsRepairPhase) {
  auto spec = cluster::ClusterSpec::ec2(4);
  dfs::SimDfs fs(failover_dfs());
  cluster::RunMetrics metrics;
  cluster::FaultPlan plan;
  plan.datanode_losses = {{0.0, 1}};
  const cluster::FaultInjector faults(plan);
  mapreduce::MrContext ctx{&spec, 1000.0, &fs, &metrics, nullptr, &faults};

  fs.put("f", std::string("payload"), 350);
  mapreduce::charge_master_step(ctx, "step", 0.001, 100, 100);

  EXPECT_FALSE(fs.node_alive(1));
  EXPECT_GT(metrics.total_rereplicated_bytes(), 0u);
  bool repair_phase = false;
  for (const auto& phase : metrics.phases()) {
    if (phase.name == "dfs/re-replicate[node1]") repair_phase = true;
  }
  EXPECT_TRUE(repair_phase);
  EXPECT_EQ("payload", fs.get<std::string>("f"));
}

// ---------------------------------------------------------------------------
// End-to-end recovery on the simulated systems
// ---------------------------------------------------------------------------

struct FaultBench {
  workload::Dataset points;
  workload::Dataset polys;
  core::JoinQueryConfig query;
  core::ExecutionConfig exec;

  static const FaultBench& instance() {
    static const FaultBench bench = [] {
      FaultBench b;
      workload::WorkloadConfig wc;
      wc.scale = 2e-4;
      b.points = workload::generate(workload::DatasetId::kTaxi1m, wc);
      b.polys = workload::generate(workload::DatasetId::kNycb, wc);
      b.query.predicate = core::JoinPredicate::kWithin;
      b.exec.cluster = cluster::ClusterSpec::workstation();
      b.exec.data_scale = 1.0 / wc.scale;
      return b;
    }();
    return bench;
  }
};

// The ISSUE's acceptance scenario: a streaming join whose largest task pipe
// overflows capacity by 1.3x dies with BrokenPipe under the seed model
// (max_attempts = 1) but completes under Hadoop's default retry budget,
// with the retries visible in the report and charged to the clock.
TEST(SystemRecovery, HadoopGisRetriesRecoverPipeOverflow) {
  const auto& b = FaultBench::instance();

  // Probe run with the gate disabled to learn the peak per-task pipe volume.
  systems::HadoopGisConfig probe;
  probe.pipe_capacity_fraction = 0.0;
  const auto clean = systems::run_hadoop_gis(b.points, b.polys, b.query, b.exec, probe);
  ASSERT_TRUE(clean.success) << clean.failure_reason;
  const std::uint64_t peak = clean.metrics.max_task_pipe_bytes();
  ASSERT_GT(peak, 0u);

  // Calibrate capacity so the worst task overflows by ~1.3x — fatal on the
  // first attempt, within the 1.5x headroom of attempt two.
  const auto& node = b.exec.cluster.node;
  systems::HadoopGisConfig faulty;
  faulty.pipe_capacity_fraction = (static_cast<double>(peak) / 1.3) * node.cores /
                                  static_cast<double>(node.memory_bytes);

  faulty.faults.max_attempts = 1;
  const auto dead = systems::run_hadoop_gis(b.points, b.polys, b.query, b.exec, faulty);
  EXPECT_FALSE(dead.success);
  EXPECT_NE(std::string::npos, dead.failure_reason.find("pipe")) << dead.failure_reason;

  faulty.faults.max_attempts = 4;
  const auto retried = systems::run_hadoop_gis(b.points, b.polys, b.query, b.exec, faulty);
  ASSERT_TRUE(retried.success) << retried.failure_reason;
  EXPECT_TRUE(retried.recovered);
  EXPECT_GT(retried.attempts_used, clean.attempts_used);
  EXPECT_GT(retried.metrics.total_wasted_seconds(), 0.0);
  // Recovery changes timing, never results.
  EXPECT_EQ(clean.result_hash, retried.result_hash);
  EXPECT_EQ(clean.result_count, retried.result_count);
}

TEST(SystemRecovery, SpatialHadoopSurvivesInjectedCrashesDeterministically) {
  const auto& b = FaultBench::instance();

  const auto clean =
      systems::run_spatial_hadoop(b.points, b.polys, b.query, b.exec);
  ASSERT_TRUE(clean.success) << clean.failure_reason;
  EXPECT_FALSE(clean.recovered);

  systems::SpatialHadoopConfig faulty;
  faulty.faults.seed = 99;
  faulty.faults.task_crash_probability = 0.2;
  faulty.faults.max_attempts = 8;
  const auto a = systems::run_spatial_hadoop(b.points, b.polys, b.query, b.exec, faulty);
  ASSERT_TRUE(a.success) << a.failure_reason;
  EXPECT_TRUE(a.recovered);
  EXPECT_GT(a.attempts_used, clean.attempts_used);
  EXPECT_EQ(clean.result_hash, a.result_hash);

  // Same seed, same attempt counts — CPU noise moves timings, never the
  // fault decisions.
  const auto rerun =
      systems::run_spatial_hadoop(b.points, b.polys, b.query, b.exec, faulty);
  ASSERT_TRUE(rerun.success) << rerun.failure_reason;
  EXPECT_EQ(a.attempts_used, rerun.attempts_used);
  ASSERT_EQ(a.metrics.phases().size(), rerun.metrics.phases().size());
  for (std::size_t i = 0; i < a.metrics.phases().size(); ++i) {
    EXPECT_EQ(a.metrics.phases()[i].task_attempts,
              rerun.metrics.phases()[i].task_attempts);
  }
}

TEST(SystemRecovery, SpatialHadoopCrashWithoutRetryBudgetIsFatal) {
  const auto& b = FaultBench::instance();
  systems::SpatialHadoopConfig faulty;
  faulty.faults.seed = 99;
  faulty.faults.task_crash_probability = 0.2;
  faulty.faults.max_attempts = 1;
  const auto report =
      systems::run_spatial_hadoop(b.points, b.polys, b.query, b.exec, faulty);
  EXPECT_FALSE(report.success);
  EXPECT_NE(std::string::npos, report.failure_reason.find("crashed"))
      << report.failure_reason;
}

// ---------------------------------------------------------------------------
// Job-lifecycle hardening: backoff cap/jitter, output-commit ledger, node
// quarantine, phase timeouts, retry budgets, structured status
// ---------------------------------------------------------------------------

TEST(FaultInjector, BackoffIsCappedAndJitterBounded) {
  cluster::FaultPlan plan;
  plan.retry_backoff_s = 2.0;
  plan.max_backoff_s = 10.0;
  const cluster::FaultInjector capped(plan);
  EXPECT_DOUBLE_EQ(2.0, capped.backoff_s(1));
  EXPECT_DOUBLE_EQ(4.0, capped.backoff_s(2));
  EXPECT_DOUBLE_EQ(8.0, capped.backoff_s(3));
  EXPECT_DOUBLE_EQ(10.0, capped.backoff_s(4));   // 16 hits the cap
  EXPECT_DOUBLE_EQ(10.0, capped.backoff_s(12));  // deep chains stay bounded

  // Jitter 0 (the default): the per-(phase, task) overload is exactly the
  // capped base, so existing runs are bit-identical.
  for (std::uint32_t k = 1; k <= 6; ++k) {
    EXPECT_DOUBLE_EQ(capped.backoff_s(k), capped.backoff_s(3, 7, k));
  }

  plan.backoff_jitter = 0.5;
  const cluster::FaultInjector jittered(plan);
  const cluster::FaultInjector rerun(plan);
  bool jitter_changes_something = false;
  for (std::uint64_t phase = 0; phase < 4; ++phase) {
    for (std::size_t task = 0; task < 16; ++task) {
      for (std::uint32_t k = 1; k <= 4; ++k) {
        const double base = jittered.backoff_s(k);
        const double b = jittered.backoff_s(phase, task, k);
        EXPECT_GE(b, 0.5 * base);
        EXPECT_LE(b, 1.5 * base);
        EXPECT_DOUBLE_EQ(b, rerun.backoff_s(phase, task, k));
        if (b != base) jitter_changes_something = true;
      }
    }
  }
  EXPECT_TRUE(jitter_changes_something);
}

TEST(FaultInjector, DescribeNamesEveryKnob) {
  cluster::FaultPlan plan;
  plan.seed = 42;
  plan.datanode_losses = {{3.0, 1}};
  const std::string text = cluster::describe(plan);
  for (const char* key :
       {"seed=42", "crash_p=", "straggler_p=", "bad_node_p=", "malformed_rows=",
        "max_attempts=", "max_backoff_s=", "jitter=", "blacklist_threshold=",
        "retry_budget=", "phase_timeout_s=", "speculative=", "losses=["}) {
    EXPECT_NE(std::string::npos, text.find(key)) << key << " missing: " << text;
  }
}

TEST(FaultySchedule, CommitLedgerBalancesUnderCrashes) {
  std::vector<double> durations(24, 2.0);
  cluster::FaultPlan plan;
  plan.seed = 77;
  plan.task_crash_probability = 0.4;
  plan.max_attempts = 8;
  const auto outcome = cluster::list_schedule_makespan(durations, 4,
                                                       cluster::FaultInjector{plan}, 23);
  ASSERT_TRUE(outcome.success);
  // Every attempt reached exactly one terminal state, and exactly one
  // attempt per task published.
  EXPECT_EQ(durations.size(), outcome.commits_published);
  EXPECT_EQ(0u, outcome.commits_rejected);
  EXPECT_GT(outcome.attempts_aborted, 0u);
  EXPECT_EQ(outcome.attempts,
            outcome.commits_published + outcome.commits_rejected +
                outcome.attempts_aborted);

  // A dead phase still balances: the winner never published.
  plan.max_attempts = 1;
  const auto dead = cluster::list_schedule_makespan(durations, 4,
                                                    cluster::FaultInjector{plan}, 23);
  ASSERT_FALSE(dead.success);
  EXPECT_EQ(dead.attempts,
            dead.commits_published + dead.commits_rejected + dead.attempts_aborted);
  EXPECT_LT(dead.commits_published, durations.size());
}

TEST(FaultySchedule, LosingCloneCommitIsRejectedNotPublished) {
  // Same race as LosingCloneChargesConsistentWaste: the straggling primary
  // (1.6x) beats the clone launched at 1.5x. The loser finishing *after*
  // the winner must observe a rejected commit — never a double publish —
  // and its span carries the speculative-loser outcome.
  const std::vector<double> durations = {1.0, 1.0, 1.0, 1.0};
  cluster::FaultPlan plan;
  plan.straggler_probability = 1.0;
  plan.straggler_slowdown = 1.6;
  plan.speculative_execution = true;
  plan.speculation_threshold = 1.5;

  std::vector<cluster::ScheduledAttempt> attempts;
  const auto outcome = cluster::list_schedule_makespan(
      durations, 8, cluster::FaultInjector{plan}, 5, nullptr, &attempts);
  ASSERT_TRUE(outcome.success);
  EXPECT_EQ(durations.size(), outcome.speculative_clones);
  EXPECT_EQ(durations.size(), outcome.commits_published);  // one per task
  EXPECT_EQ(durations.size(), outcome.commits_rejected);   // every clone lost
  EXPECT_EQ(0u, outcome.attempts_aborted);
  EXPECT_EQ(outcome.attempts,
            outcome.commits_published + outcome.commits_rejected);
  // The rejected work is exactly the charged waste, visible span by span.
  std::size_t losers = 0;
  double loser_seconds = 0.0;
  for (const auto& a : attempts) {
    if (a.outcome == trace::SpanOutcome::kSpeculativeLoser) {
      ++losers;
      loser_seconds += a.end - a.start;
    }
  }
  EXPECT_EQ(outcome.commits_rejected, losers);
  EXPECT_DOUBLE_EQ(outcome.wasted_seconds, loser_seconds);

  // And when the clone wins (slowdown 4 >> launch point 1.5), the ledger
  // flips: still one publish per task, the losing *primary* rejected.
  plan.straggler_slowdown = 4.0;
  const auto clone_wins = cluster::list_schedule_makespan(
      durations, 8, cluster::FaultInjector{plan}, 5);
  ASSERT_TRUE(clone_wins.success);
  EXPECT_EQ(durations.size(), clone_wins.commits_published);
  EXPECT_EQ(durations.size(), clone_wins.commits_rejected);
}

TEST(FaultySchedule, QuarantineShiftsWorkOffFlakyNodes) {
  // 2 nodes x 2 slots; find a seed where node 0 is flaky and node 1 is not.
  cluster::FaultPlan plan;
  plan.bad_node_probability = 0.5;
  plan.bad_node_crash_probability = 0.9;
  plan.max_attempts = 10;
  plan.node_blacklist_threshold = 2;
  std::uint64_t seed = 0;
  for (std::uint64_t s = 1; s < 4096 && seed == 0; ++s) {
    plan.seed = s;
    const cluster::FaultInjector probe(plan);
    if (probe.bad_node(0) && !probe.bad_node(1)) seed = s;
  }
  ASSERT_NE(0u, seed);
  plan.seed = seed;

  std::vector<double> durations(16, 1.0);
  const auto outcome = cluster::list_schedule_makespan(
      durations, 4, cluster::FaultInjector{plan}, 11, nullptr, nullptr,
      /*slots_per_node=*/2);
  ASSERT_TRUE(outcome.success);
  ASSERT_FALSE(outcome.quarantines.empty());
  for (const auto& q : outcome.quarantines) {
    EXPECT_EQ(0u, q.node);  // only the flaky node gets blacklisted
    EXPECT_GE(q.failures, plan.node_blacklist_threshold);
  }
  EXPECT_EQ(outcome.attempts,
            outcome.commits_published + outcome.commits_rejected +
                outcome.attempts_aborted);

  // Same plan without node grouping: quarantine stays off.
  const auto ungrouped = cluster::list_schedule_makespan(
      durations, 4, cluster::FaultInjector{plan}, 11);
  EXPECT_TRUE(ungrouped.quarantines.empty());

  // Single-node cluster: the last healthy node is never quarantined, no
  // matter how flaky.
  const auto single = cluster::list_schedule_makespan(
      durations, 4, cluster::FaultInjector{plan}, 11, nullptr, nullptr,
      /*slots_per_node=*/4);
  EXPECT_TRUE(single.quarantines.empty());
}

TEST(SystemRecovery, PhaseTimeoutKillsJobWithStructuredStatus) {
  const auto& b = FaultBench::instance();
  systems::SpatialHadoopConfig faulty;
  faulty.faults.phase_timeout_s = 1e-6;  // no phase can fit
  const auto report =
      systems::run_spatial_hadoop(b.points, b.polys, b.query, b.exec, faulty);
  EXPECT_FALSE(report.success);
  EXPECT_EQ(StatusCode::kDeadlineExceeded, report.status.code())
      << report.status.to_string();
  EXPECT_NE(std::string::npos, report.failure_reason.find("deadline"))
      << report.failure_reason;
  EXPECT_GT(report.counters.get("budget.phase_timeouts"), 0u);
  // The killed phase charged exactly the timeout, not its full makespan.
  ASSERT_FALSE(report.metrics.phases().empty());
  EXPECT_DOUBLE_EQ(faulty.faults.phase_timeout_s,
                   report.metrics.phases().back().sim_seconds);
}

TEST(SystemRecovery, RetryBudgetExhaustionIsStructured) {
  const auto& b = FaultBench::instance();
  systems::SpatialHadoopConfig faulty;
  faulty.faults.seed = 99;
  faulty.faults.task_crash_probability = 0.2;
  faulty.faults.max_attempts = 8;

  // Unlimited budget: the crashes are survivable (proved above); count the
  // retries the run actually needed.
  const auto unlimited =
      systems::run_spatial_hadoop(b.points, b.polys, b.query, b.exec, faulty);
  ASSERT_TRUE(unlimited.success) << unlimited.failure_reason;
  const std::uint64_t needed = unlimited.counters.get("budget.retries_used");
  ASSERT_GT(needed, 1u);

  // A budget one short of that kills the job with the structured status.
  faulty.faults.job_retry_budget = needed - 1;
  const auto exhausted =
      systems::run_spatial_hadoop(b.points, b.polys, b.query, b.exec, faulty);
  EXPECT_FALSE(exhausted.success);
  EXPECT_EQ(StatusCode::kRetryBudgetExhausted, exhausted.status.code())
      << exhausted.status.to_string();

  // An exactly-sufficient budget survives and reproduces the results.
  faulty.faults.job_retry_budget = needed;
  const auto tight =
      systems::run_spatial_hadoop(b.points, b.polys, b.query, b.exec, faulty);
  ASSERT_TRUE(tight.success) << tight.failure_reason;
  EXPECT_EQ(unlimited.result_hash, tight.result_hash);
}

TEST(SystemRecovery, MalformedRowsAreQuarantinedNotFatal) {
  const auto& b = FaultBench::instance();
  const auto clean = systems::run_hadoop_gis(b.points, b.polys, b.query, b.exec);
  ASSERT_TRUE(clean.success) << clean.failure_reason;

  systems::HadoopGisConfig faulty;
  faulty.faults.malformed_rows = 3;
  const auto gis =
      systems::run_hadoop_gis(b.points, b.polys, b.query, b.exec, faulty);
  ASSERT_TRUE(gis.success) << gis.failure_reason;
  EXPECT_GT(gis.counters.get("input.malformed_rows_injected"), 0u);
  EXPECT_GE(gis.counters.get("input.quarantined_rows"),
            gis.counters.get("input.malformed_rows_injected"));
  // Junk rows shift split boundaries, never results.
  EXPECT_EQ(clean.result_hash, gis.result_hash);
  EXPECT_EQ(clean.result_count, gis.result_count);

  systems::SpatialSparkConfig spark_faulty;
  spark_faulty.spark.faults.malformed_rows = 3;
  const auto spark = systems::run_spatial_spark(b.points, b.polys, b.query,
                                                b.exec, spark_faulty);
  ASSERT_TRUE(spark.success) << spark.failure_reason;
  EXPECT_EQ(spark.counters.get("input.malformed_rows_injected"),
            spark.counters.get("input.quarantined_rows"));
  EXPECT_EQ(clean.result_hash, spark.result_hash);
}

TEST(StatusTaxonomy, MapsExceptionsToCodes) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ("OK", Status::Ok().to_string());
  EXPECT_EQ(StatusCode::kDeadlineExceeded,
            status_from_exception(DeadlineExceeded("late")).code());
  EXPECT_EQ(StatusCode::kRetryBudgetExhausted,
            status_from_exception(RetryBudgetExhausted("spent")).code());
  EXPECT_EQ(StatusCode::kInvalidArgument,
            status_from_exception(InvalidArgument("bad")).code());
  const Status s = status_from_exception(DeadlineExceeded("late"));
  EXPECT_EQ("DEADLINE_EXCEEDED: late", s.to_string());
  EXPECT_FALSE(s.ok());
}

TEST(SystemRecovery, SparkExecutorLossTriggersLineageRecompute) {
  const auto& b = FaultBench::instance();
  core::ExecutionConfig exec = b.exec;
  exec.cluster = cluster::ClusterSpec::ec2(6);

  const auto clean = systems::run_spatial_spark(b.points, b.polys, b.query, exec);
  ASSERT_TRUE(clean.success) << clean.failure_reason;

  systems::SpatialSparkConfig faulty;
  faulty.spark.faults.datanode_losses = {{1.0, 2}};
  const auto lost = systems::run_spatial_spark(b.points, b.polys, b.query, exec, faulty);
  ASSERT_TRUE(lost.success) << lost.failure_reason;
  EXPECT_TRUE(lost.recovered);
  EXPECT_GT(lost.metrics.total_recomputed_partitions(), 0u);
  EXPECT_EQ(clean.result_hash, lost.result_hash);

  bool recompute_phase = false;
  for (const auto& phase : lost.metrics.phases()) {
    if (phase.name.find(".recompute[") != std::string::npos) recompute_phase = true;
  }
  EXPECT_TRUE(recompute_phase);
}

}  // namespace
}  // namespace sjc
