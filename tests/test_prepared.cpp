// PreparedGeometry tests: unit cases plus the central property — the
// prepared (indexed) evaluation answers EXACTLY as the naive reference for
// every predicate on randomized geometry pairs. This is what licenses using
// different engines in different systems while still cross-validating join
// outputs.
#include <gtest/gtest.h>

#include <cmath>

#include "geom/algorithms.hpp"
#include "geom/predicates.hpp"
#include "geom/prepared.hpp"
#include "geom/wkt.hpp"
#include "util/rng.hpp"

namespace sjc::geom {
namespace {

Geometry big_polygon() {
  // A 64-gon of radius 100: enough edges that bucket/grid paths engage.
  Ring ring;
  for (int i = 0; i < 64; ++i) {
    const double a = i * 2.0 * 3.14159265358979 / 64;
    ring.push_back({100 * std::cos(a), 100 * std::sin(a)});
  }
  ring.push_back(ring.front());
  return Geometry::polygon(std::move(ring));
}

TEST(Prepared, CoversPointMatchesNaive) {
  const Geometry poly = big_polygon();
  const PreparedGeometry prep(poly);
  Rng rng(42);
  for (int i = 0; i < 2000; ++i) {
    const Coord p{rng.uniform(-120, 120), rng.uniform(-120, 120)};
    EXPECT_EQ(prep.covers_point(p), point_in_polygon(p, poly.as_polygon()))
        << p.x << "," << p.y;
  }
}

TEST(Prepared, IntersectsLineMatchesNaive) {
  const Geometry poly = big_polygon();
  const PreparedGeometry prep(poly);
  Rng rng(43);
  for (int i = 0; i < 1000; ++i) {
    std::vector<Coord> pts;
    const auto n = 2 + rng.next_below(6);
    for (std::uint64_t k = 0; k < n; ++k) {
      pts.push_back({rng.uniform(-150, 150), rng.uniform(-150, 150)});
    }
    const Geometry line = Geometry::line_string(std::move(pts));
    EXPECT_EQ(prep.intersects(line), intersects_naive(poly, line)) << to_wkt(line);
  }
}

TEST(Prepared, DonutHoleSemantics) {
  const Geometry donut = Geometry::polygon(
      {{0, 0}, {10, 0}, {10, 10}, {0, 10}, {0, 0}},
      {{{3, 3}, {7, 3}, {7, 7}, {3, 7}, {3, 3}}});
  const PreparedGeometry prep(donut);
  EXPECT_FALSE(prep.covers_point({5, 5}));
  EXPECT_TRUE(prep.covers_point({1, 5}));
  EXPECT_TRUE(prep.covers_point({3, 5}));  // hole boundary covered
  EXPECT_FALSE(prep.intersects(Geometry::point(5, 5)));
  EXPECT_FALSE(prep.intersects(
      Geometry::polygon({{4, 4}, {6, 4}, {6, 6}, {4, 6}, {4, 4}})));
  EXPECT_TRUE(prep.contains(Geometry::line_string({{1, 1}, {2, 2}})));
  EXPECT_FALSE(prep.contains(Geometry::line_string({{1, 5}, {9, 5}})));
}

TEST(Prepared, PointAnchor) {
  const Geometry p = Geometry::point(3, 3);
  const PreparedGeometry prep(p);
  EXPECT_TRUE(prep.intersects(Geometry::point(3, 3)));
  EXPECT_FALSE(prep.intersects(Geometry::point(3, 4)));
  EXPECT_TRUE(prep.intersects(Geometry::line_string({{0, 0}, {6, 6}})));
  EXPECT_DOUBLE_EQ(prep.distance(Geometry::point(0, -1)), 5.0);
}

TEST(Prepared, IndexSizeReported) {
  const PreparedGeometry prep(big_polygon());
  EXPECT_GT(prep.index_size_bytes(), sizeof(PreparedGeometry));
}

// ---------------------------------------------------------------------------
// The equivalence property, parameterized over anchor/probe type pairs.
// ---------------------------------------------------------------------------

Geometry random_geometry(Rng& rng, int kind) {
  switch (kind) {
    case 0:
      return Geometry::point(rng.uniform(-60, 60), rng.uniform(-60, 60));
    case 1: {
      std::vector<Coord> pts;
      const auto n = 2 + rng.next_below(24);
      Coord cur{rng.uniform(-60, 60), rng.uniform(-60, 60)};
      pts.push_back(cur);
      for (std::uint64_t i = 1; i < n; ++i) {
        cur = {cur.x + rng.uniform(-12, 12), cur.y + rng.uniform(-12, 12)};
        pts.push_back(cur);
      }
      return Geometry::line_string(std::move(pts));
    }
    case 2: {
      const Coord c{rng.uniform(-40, 40), rng.uniform(-40, 40)};
      const auto n = 3 + rng.next_below(40);
      std::vector<double> angles;
      for (std::uint64_t i = 0; i < n; ++i) angles.push_back(rng.uniform(0, 6.2831));
      std::sort(angles.begin(), angles.end());
      Ring ring;
      for (const double a : angles) {
        const double r = rng.uniform(5.0, 35.0);
        ring.push_back({c.x + r * std::cos(a), c.y + r * std::sin(a)});
      }
      ring.push_back(ring.front());
      return Geometry::polygon(std::move(ring));
    }
    case 3: {
      std::vector<LineString> parts;
      const auto k = 1 + rng.next_below(3);
      for (std::uint64_t p = 0; p < k; ++p) {
        parts.push_back(LineString{{{rng.uniform(-60, 60), rng.uniform(-60, 60)},
                                    {rng.uniform(-60, 60), rng.uniform(-60, 60)},
                                    {rng.uniform(-60, 60), rng.uniform(-60, 60)}}});
      }
      return Geometry::multi_line_string(std::move(parts));
    }
    default: {
      std::vector<Polygon> parts;
      const auto k = 1 + rng.next_below(3);
      for (std::uint64_t p = 0; p < k; ++p) {
        parts.push_back(random_geometry(rng, 2).as_polygon());
      }
      return Geometry::multi_polygon(std::move(parts));
    }
  }
}

struct TypePair {
  int anchor;
  int probe;
};

class PreparedEquivalence : public ::testing::TestWithParam<TypePair> {};

TEST_P(PreparedEquivalence, IntersectsMatchesNaive) {
  Rng rng(900 + GetParam().anchor * 10 + GetParam().probe);
  for (int trial = 0; trial < 300; ++trial) {
    const Geometry anchor = random_geometry(rng, GetParam().anchor);
    const Geometry probe = random_geometry(rng, GetParam().probe);
    const PreparedGeometry prep(anchor);
    EXPECT_EQ(prep.intersects(probe), intersects_naive(anchor, probe))
        << "anchor=" << to_wkt(anchor) << "\nprobe=" << to_wkt(probe);
  }
}

TEST_P(PreparedEquivalence, ContainsMatchesNaive) {
  const int anchor_kind = GetParam().anchor;
  if (anchor_kind != 2 && anchor_kind != 4) {
    GTEST_SKIP() << "contains requires areal anchor";
  }
  Rng rng(1700 + anchor_kind * 10 + GetParam().probe);
  for (int trial = 0; trial < 300; ++trial) {
    const Geometry anchor = random_geometry(rng, anchor_kind);
    const Geometry probe = random_geometry(rng, GetParam().probe);
    const PreparedGeometry prep(anchor);
    EXPECT_EQ(prep.contains(probe), contains_naive(anchor, probe))
        << "anchor=" << to_wkt(anchor) << "\nprobe=" << to_wkt(probe);
  }
}

TEST_P(PreparedEquivalence, DistanceMatchesNaive) {
  Rng rng(2600 + GetParam().anchor * 10 + GetParam().probe);
  for (int trial = 0; trial < 150; ++trial) {
    const Geometry anchor = random_geometry(rng, GetParam().anchor);
    const Geometry probe = random_geometry(rng, GetParam().probe);
    const PreparedGeometry prep(anchor);
    const double expected = distance_naive(anchor, probe);
    const double actual = prep.distance(probe);
    EXPECT_NEAR(actual, expected, 1e-9 * std::max(1.0, expected))
        << "anchor=" << to_wkt(anchor) << "\nprobe=" << to_wkt(probe);
  }
}

std::vector<TypePair> all_pairs() {
  std::vector<TypePair> out;
  for (int a = 0; a < 5; ++a) {
    for (int p = 0; p < 5; ++p) out.push_back({a, p});
  }
  return out;
}

std::string type_pair_name(const TypePair& pair) {
  static const char* kNames[] = {"pt", "line", "poly", "mline", "mpoly"};
  return std::string(kNames[pair.anchor]) + "_vs_" + kNames[pair.probe];
}

INSTANTIATE_TEST_SUITE_P(AllTypePairs, PreparedEquivalence,
                         ::testing::ValuesIn(all_pairs()),
                         [](const auto& info) { return type_pair_name(info.param); });

}  // namespace
}  // namespace sjc::geom
