// Cross-dispatch equivalence for the SIMD refinement kernels: every path
// available on this host (scalar always; AVX2/NEON when compiled + CPU
// supported) must produce bit-identical accept/reject vectors AND identical
// RefineStats counter sums to the scalar path on randomized geometry. Also
// covers the dispatch plumbing itself: SJC_SIMD env override, forced-path
// API, unavailable-path rejection.
//
// The suite runs under ASan/UBSan in CI (the sanitize leg runs all tests),
// which is what makes the bounds-checked expansion arithmetic in
// exact_predicates.cpp load-bearing: classic Shewchuk code reads one past
// the end of its expansion arrays and would trip here.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "geom/batch_refine.hpp"
#include "geom/simd_dispatch.hpp"
#include "util/rng.hpp"

namespace sjc::geom {
namespace {

constexpr double kPi = 3.14159265358979323846;

// Generator shapes shared with test_batch_refine: star polygon, donut,
// sliver, random-walk line, point. Probes intentionally include boundary
// vertices and edge midpoints so the exact predicate escalates on real
// collinear cases, exercising the per-lane escalation paths.
Geometry star_polygon(Rng& rng) {
  const Coord c{rng.uniform(-40, 40), rng.uniform(-40, 40)};
  const auto n = 3 + rng.next_below(40);
  std::vector<double> angles;
  for (std::uint64_t i = 0; i < n; ++i) angles.push_back(rng.uniform(0, 6.2831));
  std::sort(angles.begin(), angles.end());
  Ring ring;
  for (const double a : angles) {
    const double r = rng.uniform(5.0, 35.0);
    ring.push_back({c.x + r * std::cos(a), c.y + r * std::sin(a)});
  }
  ring.push_back(ring.front());
  return Geometry::polygon(std::move(ring));
}

Geometry donut(Rng& rng) {
  const int n = 8 + static_cast<int>(rng.next_below(12));
  const double outer = rng.uniform(10, 20);
  const double inner = rng.uniform(1, 6);
  const Coord c{rng.uniform(-30, 30), rng.uniform(-30, 30)};
  Ring shell;
  Ring hole;
  for (int i = 0; i < n; ++i) {
    const double a = i * 2.0 * kPi / n;
    shell.push_back({c.x + outer * std::cos(a), c.y + outer * std::sin(a)});
    hole.push_back({c.x + inner * std::cos(a), c.y + inner * std::sin(a)});
  }
  shell.push_back(shell.front());
  hole.push_back(hole.front());
  return Geometry::polygon(std::move(shell), {std::move(hole)});
}

Geometry sliver(Rng& rng) {
  const double x0 = rng.uniform(-50, 50);
  const double y0 = rng.uniform(-50, 50);
  const double len = rng.uniform(5, 30);
  const double h = 1e-8 * rng.uniform(0.5, 2.0);
  Ring ring{{x0, y0}, {x0 + len, y0}, {x0 + len, y0 + h}, {x0, y0 + h}, {x0, y0}};
  return Geometry::polygon(std::move(ring));
}

Geometry walk_line(Rng& rng) {
  std::vector<Coord> pts;
  const auto n = 2 + rng.next_below(24);
  Coord cur{rng.uniform(-60, 60), rng.uniform(-60, 60)};
  pts.push_back(cur);
  for (std::uint64_t i = 1; i < n; ++i) {
    cur = {cur.x + rng.uniform(-12, 12), cur.y + rng.uniform(-12, 12)};
    pts.push_back(cur);
  }
  return Geometry::line_string(std::move(pts));
}

Geometry random_anchor(Rng& rng, std::uint64_t trial) {
  switch (trial % 4) {
    case 0:
      return star_polygon(rng);
    case 1:
      return donut(rng);
    case 2:
      return sliver(rng);
    default:
      return walk_line(rng);
  }
}

std::vector<Geometry> random_probes(Rng& rng, const Geometry& anchor) {
  std::vector<Geometry> probes;
  for (int i = 0; i < 24; ++i) {
    probes.push_back(Geometry::point(rng.uniform(-60, 60), rng.uniform(-60, 60)));
  }
  for (int i = 0; i < 6; ++i) probes.push_back(walk_line(rng));
  for (int i = 0; i < 4; ++i) probes.push_back(star_polygon(rng));
  // Boundary-exact probes: anchor vertices and edge midpoints force
  // zero-determinant orientation tests, i.e. genuine escalations.
  if (anchor.type() == GeomType::kPolygon) {
    const Ring& shell = anchor.as_polygon().shell;
    for (std::size_t i = 0; i + 1 < shell.size() && i < 12; ++i) {
      probes.push_back(Geometry::point(shell[i].x, shell[i].y));
      probes.push_back(Geometry::point((shell[i].x + shell[i + 1].x) / 2,
                                       (shell[i].y + shell[i + 1].y) / 2));
    }
  }
  return probes;
}

/// One path's complete answer sheet for one anchor/probe set.
struct PathAnswers {
  std::vector<std::uint8_t> intersects, contains, within;
  std::vector<std::uint8_t> covered;  // batched covers_points, point probes
  RefineStats stats;
};

PathAnswers evaluate(const Geometry& anchor, const std::vector<Geometry>& probes) {
  PathAnswers out;
  const BatchRefiner refiner(anchor);
  std::vector<Coord> pts;
  for (const auto& probe : probes) {
    out.intersects.push_back(refiner.intersects(probe, out.stats) ? 1 : 0);
    if (anchor.is_areal()) {
      out.contains.push_back(refiner.contains(probe, out.stats) ? 1 : 0);
    }
    out.within.push_back(refiner.within_distance(probe, 2.5, out.stats) ? 1 : 0);
    if (probe.type() == GeomType::kPoint) pts.push_back(probe.as_point());
  }
  if (anchor.is_areal() && !pts.empty()) {
    refiner.covers_points(pts, out.covered, out.stats);
  }
  return out;
}

TEST(SimdDispatch, AllPathsBitIdenticalToScalarOnRandomGeometry) {
  const auto paths = simd::available_paths();
  ASSERT_FALSE(paths.empty());
  ASSERT_EQ(paths.front(), simd::Path::kScalar);
  for (std::uint64_t trial = 0; trial < 40; ++trial) {
    Rng grng(9100 + trial);
    const Geometry anchor = random_anchor(grng, trial);
    const std::vector<Geometry> probes = random_probes(grng, anchor);

    ASSERT_TRUE(simd::force_path(simd::Path::kScalar));
    const PathAnswers baseline = evaluate(anchor, probes);
    // The exact-test split invariant holds on the scalar reference.
    EXPECT_EQ(baseline.stats.exact_fastpath + baseline.stats.exact_slowpath,
              baseline.stats.exact_tests);

    for (const auto path : paths) {
      if (path == simd::Path::kScalar) continue;
      ASSERT_TRUE(simd::force_path(path));
      const PathAnswers got = evaluate(anchor, probes);
      const char* pn = simd::path_name(path);
      EXPECT_EQ(got.intersects, baseline.intersects) << pn << " trial " << trial;
      EXPECT_EQ(got.contains, baseline.contains) << pn << " trial " << trial;
      EXPECT_EQ(got.within, baseline.within) << pn << " trial " << trial;
      EXPECT_EQ(got.covered, baseline.covered) << pn << " trial " << trial;
      // Counter sums bit-identical: same early-out decisions AND the same
      // escalation set (fastpath/slowpath classification matches per test).
      EXPECT_EQ(got.stats.exact_tests, baseline.stats.exact_tests) << pn;
      EXPECT_EQ(got.stats.early_accepts, baseline.stats.early_accepts) << pn;
      EXPECT_EQ(got.stats.early_rejects, baseline.stats.early_rejects) << pn;
      EXPECT_EQ(got.stats.exact_fastpath, baseline.stats.exact_fastpath) << pn;
      EXPECT_EQ(got.stats.exact_slowpath, baseline.stats.exact_slowpath) << pn;
    }
  }
  simd::reset_from_env();
}

TEST(SimdDispatch, ScalarKernelsAlwaysPresent) {
  ASSERT_NE(simd::kernels_for(simd::Path::kScalar), nullptr);
  const auto paths = simd::available_paths();
  for (const auto path : paths) {
    EXPECT_NE(simd::kernels_for(path), nullptr) << simd::path_name(path);
  }
}

TEST(SimdDispatch, UnavailablePathIsRejected) {
  const auto paths = simd::available_paths();
  const auto available = [&paths](simd::Path p) {
    return std::find(paths.begin(), paths.end(), p) != paths.end();
  };
  const simd::Path before = simd::active_path();
  for (const simd::Path p : {simd::Path::kAvx2, simd::Path::kNeon}) {
    if (available(p)) {
      EXPECT_TRUE(simd::force_path(p));
      simd::force_path(before);
    } else {
      EXPECT_EQ(simd::kernels_for(p), nullptr);
      EXPECT_FALSE(simd::force_path(p));
      EXPECT_EQ(simd::active_path(), before) << "failed force must not switch";
    }
  }
  simd::reset_from_env();
}

TEST(SimdDispatch, EnvOverrideControlsStartupPolicy) {
  // reset_from_env re-reads SJC_SIMD, so the startup policy is testable
  // in-process.
  ASSERT_EQ(setenv("SJC_SIMD", "scalar", 1), 0);
  simd::reset_from_env();
  EXPECT_EQ(simd::active_path(), simd::Path::kScalar);
  EXPECT_STREQ(simd::active_path_name(), "scalar");

  // Unknown value: warning + fall back to detection; the result must be one
  // of the available paths.
  ASSERT_EQ(setenv("SJC_SIMD", "avx512-vnni-please", 1), 0);
  simd::reset_from_env();
  const auto paths = simd::available_paths();
  EXPECT_NE(std::find(paths.begin(), paths.end(), simd::active_path()), paths.end());

  // auto = best available = what plain detection picks.
  ASSERT_EQ(setenv("SJC_SIMD", "auto", 1), 0);
  simd::reset_from_env();
  const simd::Path detected = simd::active_path();
  ASSERT_EQ(unsetenv("SJC_SIMD"), 0);
  simd::reset_from_env();
  EXPECT_EQ(simd::active_path(), detected);

  // Requesting each compiled-in path by name activates it.
  for (const auto path : paths) {
    ASSERT_EQ(setenv("SJC_SIMD", simd::path_name(path), 1), 0);
    simd::reset_from_env();
    EXPECT_EQ(simd::active_path(), path) << simd::path_name(path);
  }
  ASSERT_EQ(unsetenv("SJC_SIMD"), 0);
  simd::reset_from_env();
}

}  // namespace
}  // namespace sjc::geom
