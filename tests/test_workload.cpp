// Tests for the synthetic workload generators: determinism, scaling,
// statistical shape and the structural properties the joins rely on
// (census blocks tile the extent; every taxi point falls in exactly one
// block interior-wise).
#include <gtest/gtest.h>

#include "cluster/counters.hpp"
#include "geom/predicates.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "workload/generators.hpp"
#include "workload/dataset_io.hpp"
#include "workload/tsv.hpp"

namespace sjc::workload {
namespace {

WorkloadConfig tiny() {
  WorkloadConfig wc;
  wc.scale = 5e-5;
  return wc;
}

TEST(Generators, DatasetNames) {
  EXPECT_STREQ(dataset_id_name(DatasetId::kTaxi), "taxi");
  EXPECT_STREQ(dataset_id_name(DatasetId::kEdges01), "edges0.1");
}

TEST(Generators, PaperFactsMatchTable1) {
  EXPECT_EQ(paper_record_count(DatasetId::kTaxi), 169'720'892ULL);
  EXPECT_EQ(paper_record_count(DatasetId::kNycb), 38'839ULL);
  EXPECT_EQ(paper_record_count(DatasetId::kEdges), 72'729'686ULL);
  EXPECT_EQ(paper_record_count(DatasetId::kLinearwater), 5'857'442ULL);
  EXPECT_GT(paper_size_bytes(DatasetId::kEdges), 23ULL * 1024 * 1024 * 1024);
}

TEST(Generators, ScaledCountsTrackPaper) {
  const auto taxi = generate_taxi(tiny());
  const double expected = 169'720'892.0 * 5e-5;
  EXPECT_NEAR(static_cast<double>(taxi.size()), expected, expected * 0.01 + 2);
}

TEST(Generators, DeterministicForSeed) {
  const auto a = generate_edges(tiny());
  const auto b = generate_edges(tiny());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 97) {
    EXPECT_TRUE(a.features()[i].geometry == b.features()[i].geometry);
  }
  WorkloadConfig other = tiny();
  other.seed = 999;
  const auto c = generate_edges(other);
  EXPECT_FALSE(a.features()[0].geometry == c.features()[0].geometry);
}

TEST(Generators, AllWithinExtent) {
  const WorkloadConfig wc = tiny();
  for (const auto id : {DatasetId::kTaxi, DatasetId::kNycb, DatasetId::kEdges,
                        DatasetId::kLinearwater}) {
    const auto data = generate(id, wc);
    EXPECT_TRUE(wc.extent.contains(data.extent()))
        << dataset_id_name(id) << " escapes the extent";
  }
}

TEST(Generators, IdsAreDense) {
  const auto taxi = generate_taxi(tiny());
  for (std::size_t i = 0; i < taxi.size(); i += 131) {
    EXPECT_EQ(taxi.features()[i].id, i);
  }
}

TEST(Generators, TaxiIsSkewed) {
  // Hotspot mixture: the densest 10% of a coarse grid should hold far more
  // than 10% of points.
  const auto taxi = generate_taxi(tiny());
  const int g = 10;
  std::vector<int> cells(g * g, 0);
  const auto& extent = tiny().extent;
  for (const auto& f : taxi.features()) {
    const auto& p = f.geometry.as_point();
    const int cx = std::min(g - 1, static_cast<int>((p.x - extent.min_x()) /
                                                    extent.width() * g));
    const int cy = std::min(g - 1, static_cast<int>((p.y - extent.min_y()) /
                                                    extent.height() * g));
    cells[cy * g + cx]++;
  }
  std::sort(cells.begin(), cells.end(), std::greater<>());
  int top10 = 0;
  for (int i = 0; i < g * g / 10; ++i) top10 += cells[i];
  EXPECT_GT(top10, static_cast<int>(taxi.size()) / 4);
}

TEST(Generators, NycbBlocksTileWithoutOverlap) {
  const auto nycb = generate_nycb(tiny());
  // Probe random points: each must be covered by >= 1 block, and interior
  // points by exactly one (shared boundaries may give two).
  Rng rng(5);
  const auto& extent = tiny().extent;
  int multi = 0;
  for (int trial = 0; trial < 500; ++trial) {
    const geom::Geometry p = geom::Geometry::point(
        rng.uniform(extent.min_x() + 1, extent.max_x() - 1),
        rng.uniform(extent.min_y() + 1, extent.max_y() - 1));
    int covering = 0;
    for (const auto& f : nycb.features()) {
      if (geom::contains_naive(f.geometry, p)) ++covering;
    }
    EXPECT_GE(covering, 1);
    EXPECT_LE(covering, 2);
    if (covering > 1) ++multi;
  }
  EXPECT_LE(multi, 5);  // boundary hits are measure-zero-rare
}

TEST(Generators, NycbPolygonsAreValidAndDensified) {
  const auto nycb = generate_nycb(tiny());
  EXPECT_GE(nycb.size(), 4u);
  for (const auto& f : nycb.features()) {
    EXPECT_EQ(f.geometry.type(), geom::GeomType::kPolygon);
    EXPECT_GE(f.geometry.num_coords(), 17u);  // 4 corners + 4x3 densified + close
  }
}

TEST(Generators, GeometryComplexityShape) {
  const WorkloadConfig wc = tiny();
  const auto edges = generate_edges(wc);
  const auto water = generate_linearwater(wc);
  // TIGER-like: edges are short (few vertices), linearwater long.
  EXPECT_LT(edges.mean_coords(), 10.0);
  EXPECT_GT(water.mean_coords(), 30.0);
  EXPECT_GT(water.mean_coords(), edges.mean_coords() * 4);
}

TEST(Generators, SampleFraction) {
  const auto edges = generate_edges(tiny());
  const auto sampled = sample_fraction(edges, "edges0.1", 0.1, 7);
  EXPECT_NEAR(static_cast<double>(sampled.size()),
              static_cast<double>(edges.size()) * 0.1,
              static_cast<double>(edges.size()) * 0.05);
  EXPECT_EQ(sampled.name(), "edges0.1");
  EXPECT_THROW(sample_fraction(edges, "bad", 0.0, 7), InvalidArgument);
}

TEST(Generators, GenerateDispatchCoversAllIds) {
  const WorkloadConfig wc = tiny();
  for (const auto id : {DatasetId::kTaxi, DatasetId::kTaxi1m, DatasetId::kNycb,
                        DatasetId::kEdges, DatasetId::kLinearwater, DatasetId::kEdges01,
                        DatasetId::kLinearwater01}) {
    const auto data = generate(id, wc);
    EXPECT_GT(data.size(), 0u) << dataset_id_name(id);
    EXPECT_GT(data.text_bytes(), 0u);
    EXPECT_GT(data.memory_bytes(), 0u);
  }
}

TEST(Dataset, SplitRangesCoverExactly) {
  const auto taxi = generate_taxi1m(tiny());
  const auto ranges = taxi.split_ranges(7);
  std::size_t covered = 0;
  std::size_t prev_end = 0;
  for (const auto& [begin, end] : ranges) {
    EXPECT_EQ(begin, prev_end);
    covered += end - begin;
    prev_end = end;
  }
  EXPECT_EQ(covered, taxi.size());
}

TEST(Dataset, TextBytesSumRecordBytes) {
  const auto nycb = generate_nycb(tiny());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < nycb.size(); ++i) total += nycb.record_text_bytes(i);
  EXPECT_EQ(total, nycb.text_bytes());
}

// ---------------------------------------------------------------------------
// TSV round trip
// ---------------------------------------------------------------------------

TEST(Tsv, FeatureRoundTrip) {
  const geom::Feature f{42, geom::Geometry::point(1.5, 2.5)};
  const geom::Feature parsed = feature_from_tsv(feature_to_tsv(f));
  EXPECT_EQ(parsed.id, 42u);
  EXPECT_TRUE(parsed.geometry == f.geometry);
}

TEST(Tsv, PaddedLineParses) {
  const geom::Feature f{7, geom::Geometry::line_string({{0, 0}, {1, 1}})};
  const std::string line = feature_to_tsv(f, 50);
  EXPECT_GT(line.size(), feature_to_tsv(f).size() + 49);
  const geom::Feature parsed = feature_from_tsv(line);
  EXPECT_TRUE(parsed.geometry == f.geometry);
}

TEST(Tsv, FieldOffsetParsing) {
  const std::string line = "p12\tA\t9\tPOINT (3 4)";
  const geom::Feature parsed = feature_from_tsv_at(line, 2);
  EXPECT_EQ(parsed.id, 9u);
  EXPECT_EQ(parsed.geometry.as_point().x, 3.0);
}

TEST(Tsv, MalformedLinesThrow) {
  EXPECT_THROW(feature_from_tsv("no-tabs-here"), ParseError);
  EXPECT_THROW(feature_from_tsv("abc\tPOINT (1 2)"), ParseError);
  EXPECT_THROW(feature_from_tsv_at("only\ttwo", 5), ParseError);
}

TEST(Tsv, DatasetToTsvMatchesSize) {
  const auto nycb = generate_nycb(tiny());
  const auto lines = dataset_to_tsv(nycb);
  EXPECT_EQ(lines.size(), nycb.size());
  const auto padded = dataset_to_tsv(nycb, /*include_pad=*/true);
  EXPECT_GT(padded[0].size(), lines[0].size());
}

}  // namespace
}  // namespace sjc::workload

namespace sjc::workload {
namespace {

TEST(DatasetIo, RoundTripsThroughFile) {
  const auto original = generate_nycb(tiny());
  const std::string path = "/tmp/sjc_dataset_io_test.tsv";
  write_tsv_file(original, path);
  const auto loaded = read_tsv_file(path, "nycb", original.attr_pad_bytes());
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded.features()[i].id, original.features()[i].id);
    EXPECT_TRUE(loaded.features()[i].geometry == original.features()[i].geometry);
  }
  EXPECT_EQ(loaded.text_bytes(), original.text_bytes());
  std::remove(path.c_str());
}

TEST(DatasetIo, MissingFileThrows) {
  EXPECT_THROW(read_tsv_file("/nonexistent/file.tsv", "x"), SjcError);
}

TEST(DatasetIo, MalformedLineThrows) {
  const std::string path = "/tmp/sjc_dataset_io_bad.tsv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("1\tPOINT (1 2)\nnot a record\n", f);
  std::fclose(f);
  EXPECT_THROW(read_tsv_file(path, "bad"), ParseError);
  std::remove(path.c_str());
}

TEST(DatasetIo, SkipsBlankLines) {
  const std::string path = "/tmp/sjc_dataset_io_blank.tsv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("\n1\tPOINT (1 2)\n\n2\tPOINT (3 4)\n\n", f);
  std::fclose(f);
  const auto data = read_tsv_file(path, "pts");
  EXPECT_EQ(data.size(), 2u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Input quarantine: tolerant parsing, junk injection, the quarantine sink
// ---------------------------------------------------------------------------

TEST(Quarantine, TryParseReturnsFeatureOrError) {
  std::string error;
  const auto good = try_feature_from_tsv("7\tPOINT (1 2)", &error);
  ASSERT_TRUE(good.has_value());
  EXPECT_EQ(7u, good->id);

  for (const char* bad : {"not-a-number\tPOINT (1 2)", "7\tBLOB (1 2)",
                          "7\tPOINT (x y)", "just-one-field"}) {
    error.clear();
    EXPECT_FALSE(try_feature_from_tsv(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
    // The throwing path still throws on exactly the same lines.
    EXPECT_THROW(feature_from_tsv(bad), ParseError) << bad;
  }
}

TEST(Quarantine, InjectedJunkIsExtraAndDeterministic) {
  const std::vector<std::string> original = {"1\tPOINT (0 0)", "2\tPOINT (1 1)",
                                             "3\tPOINT (2 2)"};
  std::vector<std::string> a = original;
  inject_malformed_rows(a, 4, /*seed=*/99);
  ASSERT_EQ(original.size() + 4, a.size());

  // Same seed, same placement; different seed moves the junk.
  std::vector<std::string> b = original;
  inject_malformed_rows(b, 4, 99);
  EXPECT_EQ(a, b);

  // Real rows survive, in order, as a subsequence; junk is recognizable
  // and never parses.
  std::size_t next_real = 0;
  std::size_t junk = 0;
  for (const auto& line : a) {
    if (is_injected_junk(line)) {
      ++junk;
      EXPECT_FALSE(try_feature_from_tsv(line).has_value()) << line;
    } else {
      ASSERT_LT(next_real, original.size());
      EXPECT_EQ(original[next_real], line);
      ++next_real;
    }
  }
  EXPECT_EQ(original.size(), next_real);
  EXPECT_EQ(4u, junk);
}

TEST(Quarantine, SinkCountsSamplesAndFlushes) {
  RowQuarantine q(/*sample_capacity=*/2);
  EXPECT_EQ(0u, q.count());
  q.divert("siteA", "bad-line-1", "no tab");
  q.divert("siteA", "bad-line-2", "no tab");
  q.divert("siteB", "bad-line-3", "no tab");  // beyond capacity: counted only
  EXPECT_EQ(3u, q.count());
  EXPECT_EQ(2u, q.samples().size());
  EXPECT_NE(std::string::npos, q.samples()[0].find("siteA"));
  EXPECT_NE(std::string::npos, q.samples()[0].find("bad-line-1"));

  cluster::Counters counters;
  q.flush_counters(counters);
  EXPECT_EQ(3u, counters.get("input.quarantined_rows"));

  // An empty sink adds nothing.
  RowQuarantine empty;
  cluster::Counters none;
  empty.flush_counters(none);
  EXPECT_EQ(0u, none.get("input.quarantined_rows"));
}

TEST(Quarantine, ReadTsvFileDivertsBadLines) {
  const std::string path = "quarantine_roundtrip_test.tsv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(nullptr, f);
    std::fputs("1\tPOINT (0 0)\nXJUNK\tPOINT (1 2)\n2\tPOINT (3 4)\n", f);
    std::fclose(f);
  }
  // Default (no quarantine): the bad line is fatal, as before.
  EXPECT_THROW(read_tsv_file(path, "t"), ParseError);

  RowQuarantine q;
  const Dataset data = read_tsv_file(path, "t", 0, &q);
  EXPECT_EQ(2u, data.size());
  EXPECT_EQ(1u, q.count());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sjc::workload
