// Tests for SpatialHadoop's pre-indexed ("re-partitioning skipped") path
// and the quadtree partitioner added alongside it.
#include <gtest/gtest.h>

#include <algorithm>

#include "partition/partition_stats.hpp"
#include "partition/partitioner.hpp"
#include "systems/spatialhadoop/spatial_hadoop.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"

namespace sjc {
namespace {

struct Fixture {
  workload::Dataset points;
  workload::Dataset polys;
  core::JoinQueryConfig query;
  core::ExecutionConfig exec;

  Fixture() {
    workload::WorkloadConfig wc;
    wc.scale = 2e-4;
    points = workload::generate(workload::DatasetId::kTaxi1m, wc);
    polys = workload::generate(workload::DatasetId::kNycb, wc);
    query.predicate = core::JoinPredicate::kWithin;
    exec.cluster = cluster::ClusterSpec::workstation();
    exec.data_scale = 1.0 / wc.scale;
    exec.collect_pairs = true;
  }
};

TEST(PreIndexed, SameResultAsEndToEnd) {
  Fixture f;
  const auto end_to_end = systems::run_spatial_hadoop(f.points, f.polys, f.query, f.exec);
  ASSERT_TRUE(end_to_end.success);

  const auto ia = systems::spatial_hadoop_build_index(f.points, f.query, f.exec);
  const auto ib = systems::spatial_hadoop_build_index(f.polys, f.query, f.exec);
  const auto joined = systems::run_spatial_hadoop_indexed(ia, ib, f.query, f.exec);
  ASSERT_TRUE(joined.success);

  EXPECT_EQ(joined.result_count, end_to_end.result_count);
  EXPECT_EQ(joined.result_hash, end_to_end.result_hash);
}

TEST(PreIndexed, JoinOnlyIsMuchCheaper) {
  Fixture f;
  const auto end_to_end = systems::run_spatial_hadoop(f.points, f.polys, f.query, f.exec);
  const auto ia = systems::spatial_hadoop_build_index(f.points, f.query, f.exec);
  const auto ib = systems::spatial_hadoop_build_index(f.polys, f.query, f.exec);
  const auto joined = systems::run_spatial_hadoop_indexed(ia, ib, f.query, f.exec);

  // "SpatialHadoop can run faster when re-partitioning can be skipped":
  // the pre-indexed join pays only the DJ share.
  EXPECT_LT(joined.total_seconds, end_to_end.total_seconds / 2.0);
  EXPECT_EQ(joined.index_a_seconds, 0.0);
  EXPECT_EQ(joined.index_b_seconds, 0.0);
  EXPECT_NEAR(joined.join_seconds, joined.total_seconds, 1e-9);
  // And building both indexes once + joining is roughly the end-to-end run.
  EXPECT_NEAR(ia.build_seconds() + ib.build_seconds() + joined.total_seconds,
              end_to_end.total_seconds,
              end_to_end.total_seconds * 0.35);
}

TEST(PreIndexed, IndexExposesMetadata) {
  Fixture f;
  const auto ia = systems::spatial_hadoop_build_index(f.points, f.query, f.exec);
  EXPECT_EQ(ia.dataset_name(), "taxi1m");
  EXPECT_GT(ia.partition_count(), 1u);
  EXPECT_GT(ia.build_seconds(), 0.0);
  EXPECT_FALSE(ia.build_metrics().phases().empty());
}

TEST(PreIndexed, IndexReusableAcrossJoins) {
  Fixture f;
  const auto ia = systems::spatial_hadoop_build_index(f.points, f.query, f.exec);
  const auto ib = systems::spatial_hadoop_build_index(f.polys, f.query, f.exec);
  const auto first = systems::run_spatial_hadoop_indexed(ia, ib, f.query, f.exec);
  const auto second = systems::run_spatial_hadoop_indexed(ia, ib, f.query, f.exec);
  EXPECT_EQ(first.result_hash, second.result_hash);
  EXPECT_NEAR(first.total_seconds, second.total_seconds,
              first.total_seconds * 0.25);
}

TEST(PreIndexed, UnbuiltIndexRejected) {
  Fixture f;
  systems::SpatialHadoopIndex empty_a;
  systems::SpatialHadoopIndex empty_b;
  EXPECT_THROW(systems::run_spatial_hadoop_indexed(empty_a, empty_b, f.query, f.exec),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// Quadtree partitioner
// ---------------------------------------------------------------------------

TEST(QuadtreePartitioner, LeavesTileTheExtent) {
  Rng rng(3);
  std::vector<geom::Envelope> sample;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.bernoulli(0.7) ? rng.normal(20, 5) : rng.uniform(0, 100);
    const double y = rng.bernoulli(0.7) ? rng.normal(20, 5) : rng.uniform(0, 100);
    sample.push_back(geom::Envelope::of_point(std::clamp(x, 0.0, 100.0),
                                              std::clamp(y, 0.0, 100.0)));
  }
  const auto scheme = partition::make_quadtree_partitions(
      sample, geom::Envelope(0, 0, 100, 100), 64);
  double area = 0.0;
  for (const auto& cell : scheme.cells()) area += cell.area();
  EXPECT_NEAR(area, 100.0 * 100.0, 1e-6);
  // Quadtree adapts: hotspot cells are smaller than outskirts cells.
  double min_area = 1e18;
  double max_area = 0;
  for (const auto& cell : scheme.cells()) {
    min_area = std::min(min_area, cell.area());
    max_area = std::max(max_area, cell.area());
  }
  EXPECT_LT(min_area * 8, max_area);
}

TEST(QuadtreePartitioner, BalancesSkewBetterThanGrid) {
  Rng rng(4);
  std::vector<geom::Envelope> items;
  for (int i = 0; i < 6000; ++i) {
    const double x = rng.bernoulli(0.8) ? rng.normal(25, 4) : rng.uniform(0, 100);
    const double y = rng.bernoulli(0.8) ? rng.normal(25, 4) : rng.uniform(0, 100);
    items.push_back(geom::Envelope::of_point(std::clamp(x, 0.0, 100.0),
                                             std::clamp(y, 0.0, 100.0)));
  }
  const auto quad = partition::make_partitions(partition::PartitionerKind::kQuadtree,
                                               items, geom::Envelope(0, 0, 100, 100), 64);
  const auto grid = partition::make_partitions(partition::PartitionerKind::kFixedGrid,
                                               items, geom::Envelope(0, 0, 100, 100), 64);
  const auto quad_stats = partition::compute_partition_stats(quad, items);
  const auto grid_stats = partition::compute_partition_stats(grid, items);
  EXPECT_LT(quad_stats.skew, grid_stats.skew);
}

TEST(QuadtreePartitioner, EmptySampleFallsBack) {
  const auto scheme = partition::make_quadtree_partitions(
      {}, geom::Envelope(0, 0, 10, 10), 16);
  EXPECT_GE(scheme.cell_count(), 1u);
}

TEST(QuadtreePartitioner, SystemsStillAgreeWithIt) {
  Fixture f;
  f.query.partitioner = partition::PartitionerKind::kQuadtree;
  const auto sh = core::run_spatial_join(core::SystemKind::kSpatialHadoopSim, f.points,
                                         f.polys, f.query, f.exec);
  const auto ss = core::run_spatial_join(core::SystemKind::kSpatialSparkSim, f.points,
                                         f.polys, f.query, f.exec);
  ASSERT_TRUE(sh.success && ss.success);
  EXPECT_EQ(sh.result_hash, ss.result_hash);
  EXPECT_GT(sh.result_count, 0u);
}

}  // namespace
}  // namespace sjc
