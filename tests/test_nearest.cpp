// Tests for best-first nearest-neighbor search and the serial NN join.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "core/nn_join.hpp"
#include "index/nearest.hpp"
#include "util/rng.hpp"

namespace sjc {
namespace {

std::vector<index::IndexEntry> random_points(Rng& rng, std::size_t n) {
  std::vector<index::IndexEntry> out;
  for (std::uint32_t i = 0; i < n; ++i) {
    out.push_back({geom::Envelope::of_point(rng.uniform(0, 100), rng.uniform(0, 100)), i});
  }
  return out;
}

TEST(Nearest, EmptyTree) {
  const index::StrTree tree({});
  EXPECT_TRUE(index::k_nearest_envelopes(tree, geom::Envelope(0, 0, 1, 1), 3).empty());
  const auto hit = index::nearest_exact(tree, geom::Envelope(0, 0, 1, 1),
                                        [](std::uint32_t) { return 0.0; });
  EXPECT_EQ(hit.id, std::numeric_limits<std::uint32_t>::max());
}

TEST(Nearest, KZeroYieldsNothing) {
  Rng rng(1);
  const index::StrTree tree(random_points(rng, 10));
  EXPECT_TRUE(index::k_nearest_envelopes(tree, geom::Envelope(0, 0, 1, 1), 0).empty());
}

TEST(Nearest, SingleEntry) {
  const index::StrTree tree({{geom::Envelope::of_point(5, 5), 42}});
  const auto hits = index::k_nearest_envelopes(tree, geom::Envelope::of_point(0, 1), 3);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 42u);
  EXPECT_NEAR(hits[0].distance, std::sqrt(25 + 16), 1e-12);
}

TEST(Nearest, AscendingOrderAndMatchesBruteForce) {
  Rng rng(7);
  const auto entries = random_points(rng, 500);
  const index::StrTree tree(entries);
  for (int trial = 0; trial < 50; ++trial) {
    const geom::Envelope q =
        geom::Envelope::of_point(rng.uniform(-10, 110), rng.uniform(-10, 110));
    const auto hits = index::k_nearest_envelopes(tree, q, 10);
    ASSERT_EQ(hits.size(), 10u);
    for (std::size_t i = 1; i < hits.size(); ++i) {
      EXPECT_GE(hits[i].distance, hits[i - 1].distance);
    }
    // Brute-force k-th distance must match.
    std::vector<double> dists;
    for (const auto& e : entries) dists.push_back(e.env.distance(q));
    std::sort(dists.begin(), dists.end());
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_DOUBLE_EQ(hits[i].distance, dists[i]);
    }
  }
}

TEST(Nearest, ExactRerankOverridesEnvelopeOrder) {
  // Two boxes: A's envelope is nearer the query, but B's "exact" distance
  // is smaller — nearest_exact must return B.
  const index::StrTree tree({{geom::Envelope(1, 0, 2, 1), 0},   // env distance 0
                             {geom::Envelope(3, 0, 4, 1), 1}}); // env distance 1.x
  const auto hit = index::nearest_exact(
      tree, geom::Envelope::of_point(1.5, 0.5),
      [](std::uint32_t id) { return id == 0 ? 5.0 : 2.0; });
  EXPECT_EQ(hit.id, 1u);
  EXPECT_EQ(hit.distance, 2.0);
}

TEST(Nearest, ExactMatchesBruteForceOnGeometry) {
  Rng rng(9);
  std::vector<geom::Feature> lines;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const double x = rng.uniform(0, 100);
    const double y = rng.uniform(0, 100);
    lines.push_back({i, geom::Geometry::line_string(
                            {{x, y}, {x + rng.uniform(-5, 5), y + rng.uniform(-5, 5)}})});
  }
  std::vector<index::IndexEntry> entries;
  for (std::uint32_t i = 0; i < lines.size(); ++i) {
    entries.push_back({lines[i].geometry.envelope(), i});
  }
  const index::StrTree tree(entries);
  const auto& engine = geom::GeometryEngine::prepared();
  for (int trial = 0; trial < 100; ++trial) {
    const geom::Geometry p =
        geom::Geometry::point(rng.uniform(0, 100), rng.uniform(0, 100));
    const auto hit = index::nearest_exact(
        tree, p.envelope(),
        [&](std::uint32_t id) { return engine.distance(p, lines[id].geometry); });
    double best = std::numeric_limits<double>::infinity();
    std::uint32_t best_id = 0;
    for (std::uint32_t i = 0; i < lines.size(); ++i) {
      const double d = engine.distance(p, lines[i].geometry);
      if (d < best) {
        best = d;
        best_id = i;
      }
    }
    EXPECT_EQ(hit.id, best_id);
    EXPECT_DOUBLE_EQ(hit.distance, best);
  }
}

// ---------------------------------------------------------------------------
// NN join
// ---------------------------------------------------------------------------

TEST(NnJoin, EmptySides) {
  std::vector<geom::Feature> some = {{0, geom::Geometry::point(0, 0)}};
  EXPECT_TRUE(core::nearest_neighbor_join({}, some).empty());
  EXPECT_TRUE(core::nearest_neighbor_join(some, {}).empty());
}

TEST(NnJoin, MatchesBruteForce) {
  Rng rng(11);
  std::vector<geom::Feature> points;
  for (std::uint64_t i = 0; i < 150; ++i) {
    points.push_back(
        {i, geom::Geometry::point(rng.uniform(0, 50), rng.uniform(0, 50))});
  }
  std::vector<geom::Feature> roads;
  for (std::uint64_t i = 0; i < 40; ++i) {
    const double x = rng.uniform(0, 50);
    const double y = rng.uniform(0, 50);
    roads.push_back({1000 + i, geom::Geometry::line_string(
                                   {{x, y}, {x + rng.uniform(-8, 8), y + rng.uniform(-8, 8)}})});
  }
  const auto matches = core::nearest_neighbor_join(points, roads);
  ASSERT_EQ(matches.size(), points.size());
  const auto& engine = geom::GeometryEngine::prepared();
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(matches[i].left_id, points[i].id);
    double best = std::numeric_limits<double>::infinity();
    for (const auto& r : roads) {
      best = std::min(best, engine.distance(points[i].geometry, r.geometry));
    }
    EXPECT_DOUBLE_EQ(matches[i].distance, best);
    EXPECT_DOUBLE_EQ(
        engine.distance(points[i].geometry,
                        roads[matches[i].right_id - 1000].geometry),
        best);
  }
}

TEST(NnJoin, ZeroDistanceForCoveredPoints) {
  std::vector<geom::Feature> points = {{0, geom::Geometry::point(1, 1)}};
  std::vector<geom::Feature> lines = {
      {7, geom::Geometry::line_string({{0, 0}, {2, 2}})}};
  const auto matches = core::nearest_neighbor_join(points, lines);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].right_id, 7u);
  EXPECT_EQ(matches[0].distance, 0.0);
}

TEST(NnJoin, EnginesAgree) {
  Rng rng(13);
  std::vector<geom::Feature> points;
  std::vector<geom::Feature> lines;
  for (std::uint64_t i = 0; i < 60; ++i) {
    points.push_back({i, geom::Geometry::point(rng.uniform(0, 20), rng.uniform(0, 20))});
    const double x = rng.uniform(0, 20);
    const double y = rng.uniform(0, 20);
    lines.push_back({i, geom::Geometry::line_string(
                            {{x, y}, {x + rng.uniform(-3, 3), y + rng.uniform(-3, 3)}})});
  }
  const auto a = core::nearest_neighbor_join(points, lines,
                                             geom::GeometryEngine::simple());
  const auto b = core::nearest_neighbor_join(points, lines,
                                             geom::GeometryEngine::prepared());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace sjc
