// Tests for Douglas-Peucker simplification.
#include <gtest/gtest.h>

#include <cmath>

#include "geom/algorithms.hpp"
#include "geom/simplify.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace sjc::geom {
namespace {

TEST(Simplify, EndpointsAlwaysSurvive) {
  const std::vector<Coord> path = {{0, 0}, {1, 5}, {2, -3}, {3, 0}};
  const auto out = simplify_path(path, 100.0);  // huge tolerance
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out.front() == path.front());
  EXPECT_TRUE(out.back() == path.back());
}

TEST(Simplify, ToleranceZeroDropsOnlyCollinear) {
  const std::vector<Coord> path = {{0, 0}, {1, 0}, {2, 0}, {3, 1}};
  const auto out = simplify_path(path, 0.0);
  ASSERT_EQ(out.size(), 3u);  // (1,0) is exactly collinear
  EXPECT_EQ(out[1].x, 2.0);
}

TEST(Simplify, KeepsSignificantVertices) {
  const std::vector<Coord> path = {{0, 0}, {5, 0.1}, {10, 4}, {15, 0.1}, {20, 0}};
  // The wiggle vertices sit ~1.8 from the (0,0)-(10,4) chords; tolerance 2
  // drops them while the 4-high spike survives.
  const auto out = simplify_path(path, 2.0);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1].y, 4.0);
}

TEST(Simplify, ShortPathsUnchanged) {
  const std::vector<Coord> two = {{0, 0}, {1, 1}};
  EXPECT_EQ(simplify_path(two, 10.0).size(), 2u);
}

TEST(Simplify, RejectsNegativeTolerance) {
  EXPECT_THROW(simplify_path({{0, 0}, {1, 1}}, -1.0), InvalidArgument);
  EXPECT_THROW(simplify(Geometry::point(0, 0), -0.5), InvalidArgument);
}

TEST(Simplify, PointUnchanged) {
  const Geometry p = Geometry::point(3, 4);
  EXPECT_TRUE(simplify(p, 5.0) == p);
}

TEST(Simplify, PolygonStaysClosedAndValid) {
  Rng rng(8);
  Ring ring;
  const int n = 60;
  for (int i = 0; i < n; ++i) {
    const double a = i * 2 * 3.14159265358979 / n;
    const double r = 50 + rng.uniform(-1, 1);  // nearly a circle with noise
    ring.push_back({r * std::cos(a), r * std::sin(a)});
  }
  ring.push_back(ring.front());
  const Geometry poly = Geometry::polygon(std::move(ring));
  const Geometry out = simplify(poly, 2.0);
  EXPECT_EQ(out.type(), GeomType::kPolygon);
  EXPECT_LT(out.num_coords(), poly.num_coords());
  EXPECT_GE(out.num_coords(), 4u);
  const auto& shell = out.as_polygon().shell;
  EXPECT_TRUE(shell.front() == shell.back());
}

// Property: every dropped vertex is within tolerance of the simplified
// polyline (the Douglas-Peucker guarantee).
TEST(SimplifyProperty, DroppedVerticesStayWithinTolerance) {
  Rng rng(21);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Coord> path;
    Coord cur{0, 0};
    const int n = 20 + static_cast<int>(rng.next_below(80));
    for (int i = 0; i < n; ++i) {
      cur = {cur.x + rng.uniform(0.2, 2.0), cur.y + rng.uniform(-1.5, 1.5)};
      path.push_back(cur);
    }
    const double tol = rng.uniform(0.1, 3.0);
    const auto out = simplify_path(path, tol);
    ASSERT_GE(out.size(), 2u);
    const LineString simplified{out};
    for (const auto& p : path) {
      EXPECT_LE(std::sqrt(squared_distance_point_linestring(p, simplified)),
                tol + 1e-9);
    }
  }
}

// Property: simplification is idempotent at the same tolerance.
TEST(SimplifyProperty, Idempotent) {
  Rng rng(22);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Coord> path;
    Coord cur{0, 0};
    for (int i = 0; i < 50; ++i) {
      cur = {cur.x + rng.uniform(0.2, 2.0), cur.y + rng.uniform(-1, 1)};
      path.push_back(cur);
    }
    const auto once = simplify_path(path, 1.0);
    const auto twice = simplify_path(once, 1.0);
    EXPECT_EQ(once, twice);
  }
}

}  // namespace
}  // namespace sjc::geom
