// GeometryEngine facade tests: both engines expose identical semantics; the
// bound-predicate path matches the one-shot path.
#include <gtest/gtest.h>

#include "geom/engine.hpp"
#include "geom/predicates.hpp"
#include "util/rng.hpp"

namespace sjc::geom {
namespace {

Geometry census_blockish(Rng& rng) {
  const Coord c{rng.uniform(-40, 40), rng.uniform(-40, 40)};
  Ring ring;
  const int n = 16;
  for (int i = 0; i < n; ++i) {
    const double a = i * 2.0 * 3.14159265358979 / n;
    const double r = rng.uniform(4.0, 9.0);
    ring.push_back({c.x + r * std::cos(a), c.y + r * std::sin(a)});
  }
  ring.push_back(ring.front());
  return Geometry::polygon(std::move(ring));
}

TEST(Engine, SingletonsHaveDistinctKinds) {
  EXPECT_EQ(GeometryEngine::simple().kind(), EngineKind::kSimple);
  EXPECT_EQ(GeometryEngine::prepared().kind(), EngineKind::kPrepared);
  EXPECT_EQ(&GeometryEngine::get(EngineKind::kSimple), &GeometryEngine::simple());
  EXPECT_EQ(&GeometryEngine::get(EngineKind::kPrepared), &GeometryEngine::prepared());
}

TEST(Engine, NamesMentionTheAnalogs) {
  EXPECT_NE(GeometryEngine::simple().name().find("geos"), std::string::npos);
  EXPECT_NE(GeometryEngine::prepared().name().find("jts"), std::string::npos);
}

TEST(Engine, EnginesAgreeOnRandomPredicates) {
  Rng rng(314);
  const auto& simple = GeometryEngine::simple();
  const auto& prepared = GeometryEngine::prepared();
  for (int trial = 0; trial < 500; ++trial) {
    const Geometry poly = census_blockish(rng);
    const Geometry p = Geometry::point(rng.uniform(-50, 50), rng.uniform(-50, 50));
    EXPECT_EQ(simple.intersects(poly, p), prepared.intersects(poly, p));
    EXPECT_EQ(simple.contains(poly, p), prepared.contains(poly, p));
    EXPECT_NEAR(simple.distance(poly, p), prepared.distance(poly, p), 1e-9);
  }
}

TEST(Engine, BoundPredicateMatchesOneShot) {
  Rng rng(217);
  const auto& prepared = GeometryEngine::prepared();
  const Geometry poly = census_blockish(rng);
  const auto bound = prepared.bind(poly);
  EXPECT_TRUE(&bound->anchor() == &poly || bound->anchor() == poly);
  for (int trial = 0; trial < 500; ++trial) {
    const Geometry p = Geometry::point(rng.uniform(-50, 50), rng.uniform(-50, 50));
    EXPECT_EQ(bound->intersects(p), prepared.intersects(poly, p));
    EXPECT_EQ(bound->contains(p), prepared.contains(poly, p));
    EXPECT_NEAR(bound->distance(p), prepared.distance(poly, p), 1e-9);
  }
}

TEST(Engine, WithinDistanceUsesEnvelopeEarlyOut) {
  const Geometry poly = Geometry::polygon({{0, 0}, {4, 0}, {4, 4}, {0, 4}, {0, 0}});
  const auto bound = GeometryEngine::prepared().bind(poly);
  EXPECT_TRUE(bound->within_distance(Geometry::point(7, 2), 3.0));
  EXPECT_FALSE(bound->within_distance(Geometry::point(7, 2), 2.9));
  EXPECT_FALSE(bound->within_distance(Geometry::point(1000, 1000), 10.0));
}

TEST(Engine, SimpleBindHasNoPreparationSideEffects) {
  // Binding on the simple engine returns a thin wrapper; answers must equal
  // the naive free functions.
  const Geometry poly = Geometry::polygon({{0, 0}, {4, 0}, {4, 4}, {0, 4}, {0, 0}});
  const auto bound = GeometryEngine::simple().bind(poly);
  const Geometry probe = Geometry::point(2, 2);
  EXPECT_EQ(bound->intersects(probe), intersects_naive(poly, probe));
  EXPECT_EQ(bound->contains(probe), contains_naive(poly, probe));
}

}  // namespace
}  // namespace sjc::geom
