// ThreadPool stress tests, written to run under TSan (see the tsan-smoke CI
// job). The completion-race regression test hammers the exact window the
// old parallel_for had: the last shard bumped an atomic counter *before*
// locking done_mutex, so the waiting caller could observe done == shards,
// return, and destroy done_mutex/done_cv on its stack while the shard was
// still about to lock and notify them — a use-after-scope TSan reports
// reliably at this iteration count. The fixed code increments and
// notifies under the lock, which makes the waiter's frame unreachable until
// the notifier has released the mutex.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace sjc {
namespace {

TEST(ThreadPoolStress, CompletionRaceRegression) {
  // Many short parallel_for calls back to back: each call's completion
  // objects live on this frame and are destroyed the moment wait() returns,
  // so any notifier still touching them trips TSan / crashes. Empty bodies
  // and a pool heavily oversubscribed against the host's cores maximize the
  // chance a preempted last shard races the waiter's teardown — run against
  // the old unfixed parallel_for, this exact shape makes TSan report a data
  // race on the completion mutex (and exit non-zero) every run.
  ThreadPool pool(32);
  std::atomic<std::size_t> total{0};
  constexpr std::size_t kIters = 80000;
  for (std::size_t iter = 0; iter < kIters; ++iter) {
    pool.parallel_for(32, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), kIters * 32u);
}

TEST(ThreadPoolStress, SharedPoolCompletionRace) {
  // Same window on the process-wide pool the engines actually use.
  std::atomic<std::size_t> total{0};
  for (int iter = 0; iter < 1000; ++iter) {
    ThreadPool::shared().parallel_for(
        ThreadPool::shared().thread_count() + 3,
        [&](std::size_t) { total.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(total.load(), 1000u * (ThreadPool::shared().thread_count() + 3));
}

TEST(ThreadPoolStress, NestedParallelForRunsInline) {
  // A body that re-enters the pool must run its inner loop inline on the
  // same worker (deadlock avoidance), at any nesting depth: the RAII guard
  // restores the inside-worker flag after each task instead of clearing it.
  ThreadPool pool(2);
  std::atomic<std::size_t> inner_total{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(4, [&](std::size_t) {
      pool.parallel_for(4, [&](std::size_t) {
        inner_total.fetch_add(1, std::memory_order_relaxed);
      });
    });
  });
  EXPECT_EQ(inner_total.load(), 4u * 4u * 4u);
}

TEST(ThreadPoolStress, CrossPoolNestingRunsInline) {
  // The inside-worker flag is shared by all pools on a thread: a worker of
  // pool A executing a task that drives pool B must run B's bodies inline
  // (queueing onto B could deadlock if B's workers are themselves blocked
  // on A). The RAII guard keeps the flag correct through arbitrary
  // interleavings of the two pools.
  ThreadPool a(2);
  ThreadPool b(2);
  std::vector<std::size_t> hits(32, 0);
  a.parallel_for(32, [&](std::size_t i) {
    b.parallel_for(2, [&](std::size_t j) {
      if (j == 0) ++hits[i];  // runs inline on a's worker: no race on hits[i]
    });
  });
  for (const auto h : hits) EXPECT_EQ(h, 1u);
}

TEST(ThreadPoolStress, ExceptionLeavesPoolUsable) {
  // The first exception is rethrown after all shards drain; the pool (and
  // its completion machinery) must stay fully usable afterwards.
  ThreadPool pool(4);
  for (int iter = 0; iter < 50; ++iter) {
    EXPECT_THROW(pool.parallel_for(16,
                                   [&](std::size_t i) {
                                     if (i == 7) throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
    std::atomic<std::size_t> ok{0};
    pool.parallel_for(16, [&](std::size_t) {
      ok.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(ok.load(), 16u);
  }
}

}  // namespace
}  // namespace sjc
