// WKB codec tests: structure, round trips (shared random-geometry
// generator with the WKT suite), size accounting and error handling.
#include <gtest/gtest.h>

#include <cmath>

#include "geom/wkb.hpp"
#include "geom/wkt.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace sjc::geom {
namespace {

TEST(Wkb, PointLayout) {
  const auto bytes = to_wkb(Geometry::point(1.0, 2.0));
  ASSERT_EQ(bytes.size(), 21u);
  EXPECT_EQ(bytes[0], 1);  // little-endian marker
  EXPECT_EQ(bytes[1], 1);  // point tag
  EXPECT_EQ(bytes[2], 0);
}

TEST(Wkb, SizeMatchesEncoding) {
  const Geometry geoms[] = {
      Geometry::point(1, 2),
      Geometry::line_string({{0, 0}, {1, 1}, {2, 0}}),
      Geometry::polygon({{0, 0}, {4, 0}, {4, 4}, {0, 4}, {0, 0}},
                        {{{1, 1}, {2, 1}, {2, 2}, {1, 2}, {1, 1}}}),
      Geometry::multi_line_string({LineString{{{0, 0}, {1, 1}}}}),
      Geometry::multi_polygon({Polygon{{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0, 0}}, {}}}),
  };
  for (const auto& g : geoms) {
    EXPECT_EQ(to_wkb(g).size(), wkb_size(g)) << to_wkt(g);
  }
}

TEST(Wkb, BinaryIsSmallerThanTextForDenseGeometry) {
  // The SpatialHadoop-vs-streaming storage argument: binary coordinates
  // beat decimal text once geometries carry real precision.
  std::vector<Coord> pts;
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    pts.push_back({rng.uniform(0, 50000), rng.uniform(0, 50000)});
  }
  const Geometry line = Geometry::line_string(std::move(pts));
  EXPECT_LT(wkb_size(line), to_wkt(line).size());
}

TEST(Wkb, RejectsTruncated) {
  auto bytes = to_wkb(Geometry::line_string({{0, 0}, {1, 1}}));
  bytes.resize(bytes.size() - 3);
  EXPECT_THROW(from_wkb(bytes), ParseError);
}

TEST(Wkb, RejectsTrailingBytes) {
  auto bytes = to_wkb(Geometry::point(0, 0));
  bytes.push_back(0);
  EXPECT_THROW(from_wkb(bytes), ParseError);
}

TEST(Wkb, RejectsBigEndian) {
  auto bytes = to_wkb(Geometry::point(0, 0));
  bytes[0] = 0;  // XDR marker
  EXPECT_THROW(from_wkb(bytes), ParseError);
}

TEST(Wkb, RejectsUnknownTag) {
  auto bytes = to_wkb(Geometry::point(0, 0));
  bytes[1] = 99;
  EXPECT_THROW(from_wkb(bytes), ParseError);
}

TEST(Wkb, RejectsAbsurdCoordCount) {
  // LINESTRING header claiming 2^31 coordinates with a tiny payload must
  // throw, not allocate.
  std::vector<std::uint8_t> bytes = {1, 2, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f};
  EXPECT_THROW(from_wkb(bytes), ParseError);
}

TEST(Wkb, RejectsEmpty) {
  EXPECT_THROW(from_wkb({}), ParseError);
}

// ---------------------------------------------------------------------------
// Round-trip property over all five types.
// ---------------------------------------------------------------------------

class WkbRoundTrip : public ::testing::TestWithParam<int> {};

Geometry random_geometry(Rng& rng, int kind) {
  const auto coord = [&rng] {
    return Coord{rng.uniform(-1000, 1000), rng.uniform(-1000, 1000)};
  };
  switch (kind) {
    case 0:
      return Geometry::point(rng.uniform(-1e6, 1e6), rng.uniform(-1e6, 1e6));
    case 1: {
      std::vector<Coord> pts;
      const auto n = 2 + rng.next_below(30);
      for (std::uint64_t i = 0; i < n; ++i) pts.push_back(coord());
      return Geometry::line_string(std::move(pts));
    }
    case 2: {
      const Coord c = coord();
      const auto n = 3 + rng.next_below(12);
      std::vector<double> angles;
      for (std::uint64_t i = 0; i < n; ++i) angles.push_back(rng.uniform(0, 6.283));
      std::sort(angles.begin(), angles.end());
      Ring ring;
      for (const double a : angles) {
        const double r = rng.uniform(1.0, 50.0);
        ring.push_back({c.x + r * std::cos(a), c.y + r * std::sin(a)});
      }
      ring.push_back(ring.front());
      return Geometry::polygon(std::move(ring));
    }
    case 3: {
      std::vector<LineString> parts;
      const auto k = 1 + rng.next_below(4);
      for (std::uint64_t p = 0; p < k; ++p) {
        parts.push_back(LineString{{coord(), coord(), coord()}});
      }
      return Geometry::multi_line_string(std::move(parts));
    }
    default: {
      std::vector<Polygon> parts;
      const auto k = 1 + rng.next_below(3);
      for (std::uint64_t p = 0; p < k; ++p) {
        parts.push_back(random_geometry(rng, 2).as_polygon());
      }
      return Geometry::multi_polygon(std::move(parts));
    }
  }
}

TEST_P(WkbRoundTrip, ExactRoundTrip) {
  Rng rng(4000 + GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    const Geometry original = random_geometry(rng, GetParam());
    // Binary doubles round-trip bit-exactly.
    const Geometry parsed = from_wkb(to_wkb(original));
    EXPECT_TRUE(original == parsed) << to_wkt(original);
  }
}

const char* wkb_kind_name(int kind) {
  static const char* kNames[] = {"point", "linestring", "polygon", "multilinestring",
                                 "multipolygon"};
  return kNames[kind];
}

INSTANTIATE_TEST_SUITE_P(AllTypes, WkbRoundTrip, ::testing::Range(0, 5),
                         [](const auto& info) { return wkb_kind_name(info.param); });

// WKT -> WKB -> WKT consistency.
TEST(Wkb, AgreesWithWktPipeline) {
  Rng rng(777);
  for (int trial = 0; trial < 100; ++trial) {
    const Geometry g = random_geometry(rng, static_cast<int>(rng.next_below(5)));
    EXPECT_TRUE(from_wkb(to_wkb(from_wkt(to_wkt(g)))) == from_wkt(to_wkt(g)));
  }
}

}  // namespace
}  // namespace sjc::geom
