// Tests for the RDD engine: transformation semantics, wide operations,
// broadcast, memory accounting and the OOM gate.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "rdd/rdd.hpp"

namespace sjc::rdd {
namespace {

Sizer<int> int_sizer() {
  return [](const int&) -> std::uint64_t { return 8; };
}

struct SparkFixture {
  cluster::RunMetrics metrics;
  cluster::ClusterSpec spec = cluster::ClusterSpec::workstation();
  SparkConfig config;
  SparkFixture() = default;

  SparkRuntime make_runtime(double data_scale = 1000.0) {
    return SparkRuntime(spec, data_scale, nullptr, &metrics, config);
  }
};

TEST(Rdd, CreateAndCollect) {
  SparkFixture f;
  auto rt = f.make_runtime();
  auto r = Rdd<int>::create(rt, {{1, 2}, {3}, {}}, int_sizer(), "ints");
  EXPECT_EQ(r.num_partitions(), 3u);
  EXPECT_EQ(r.count(), 3u);
  EXPECT_EQ(r.collect(), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(r.bytes(), 24u);
}

TEST(Rdd, MapPreservesPartitioning) {
  SparkFixture f;
  auto rt = f.make_runtime();
  auto r = Rdd<int>::create(rt, {{1, 2}, {3}}, int_sizer(), "ints");
  auto doubled = r.map<int>("double", [](const int& x) { return 2 * x; }, int_sizer());
  EXPECT_EQ(doubled.num_partitions(), 2u);
  EXPECT_EQ(doubled.collect(), (std::vector<int>{2, 4, 6}));
}

TEST(Rdd, FlatMapExpands) {
  SparkFixture f;
  auto rt = f.make_runtime();
  auto r = Rdd<int>::create(rt, {{2, 3}}, int_sizer(), "ints");
  auto repeated = r.flat_map<int>(
      "repeat",
      [](const int& x, std::vector<int>& out) {
        for (int i = 0; i < x; ++i) out.push_back(x);
      },
      int_sizer());
  EXPECT_EQ(repeated.collect(), (std::vector<int>{2, 2, 3, 3, 3}));
}

TEST(Rdd, FilterKeepsMatching) {
  SparkFixture f;
  auto rt = f.make_runtime();
  auto r = Rdd<int>::create(rt, {{1, 2, 3, 4, 5}}, int_sizer(), "ints");
  EXPECT_EQ(r.filter("even", [](const int& x) { return x % 2 == 0; }).collect(),
            (std::vector<int>{2, 4}));
}

TEST(Rdd, MapPartitionsSeesWholePartition) {
  SparkFixture f;
  auto rt = f.make_runtime();
  auto r = Rdd<int>::create(rt, {{1, 2, 3}, {4, 5}}, int_sizer(), "ints");
  auto sums = r.map_partitions<int>(
      "sum",
      [](const std::vector<int>& part, std::vector<int>& out) {
        out.push_back(std::accumulate(part.begin(), part.end(), 0));
      },
      int_sizer());
  EXPECT_EQ(sums.collect(), (std::vector<int>{6, 9}));
}

TEST(Rdd, SampleIsDeterministicAndApproximate) {
  SparkFixture f;
  auto rt = f.make_runtime();
  std::vector<std::vector<int>> parts(8);
  for (int i = 0; i < 8000; ++i) parts[i % 8].push_back(i);
  auto r = Rdd<int>::create(rt, parts, int_sizer(), "ints");
  const auto s1 = r.sample("s", 0.1, 42).collect();
  const auto s2 = r.sample("s", 0.1, 42).collect();
  EXPECT_EQ(s1, s2);
  EXPECT_NEAR(static_cast<double>(s1.size()), 800.0, 120.0);
  const auto s3 = r.sample("s", 0.1, 43).collect();
  EXPECT_NE(s1, s3);
}

TEST(Rdd, SampleRejectsBadRate) {
  SparkFixture f;
  auto rt = f.make_runtime();
  auto r = Rdd<int>::create(rt, {{1}}, int_sizer(), "ints");
  EXPECT_THROW(r.sample("s", 1.5, 1), InvalidArgument);
}

TEST(Rdd, GroupByKeyCollectsAllValues) {
  SparkFixture f;
  auto rt = f.make_runtime();
  using KV = std::pair<int, int>;
  auto pairs = Rdd<KV>::create(rt, {{{1, 10}, {2, 20}}, {{1, 11}, {3, 30}}},
                               [](const KV&) -> std::uint64_t { return 16; }, "kv");
  auto grouped = group_by_key<int, int>(
      pairs, 4, [](const auto&) -> std::uint64_t { return 32; });
  std::map<int, std::vector<int>> result;
  for (auto& [k, vs] : grouped.collect()) {
    std::sort(vs.begin(), vs.end());
    result[k] = vs;
  }
  EXPECT_EQ(result.at(1), (std::vector<int>{10, 11}));
  EXPECT_EQ(result.at(2), (std::vector<int>{20}));
  EXPECT_EQ(result.at(3), (std::vector<int>{30}));
}

TEST(Rdd, JoinByKeyInnerSemantics) {
  SparkFixture f;
  auto rt = f.make_runtime();
  using KV = std::pair<int, std::string>;
  const auto sizer = [](const KV&) -> std::uint64_t { return 24; };
  auto left = Rdd<KV>::create(rt, {{{1, "a"}, {2, "b"}, {1, "c"}}}, sizer, "L");
  auto right = Rdd<KV>::create(rt, {{{1, "x"}, {3, "y"}}}, sizer, "R");
  auto joined = join_by_key<int, std::string, std::string>(
      left, right, 4, [](const auto&) -> std::uint64_t { return 48; });
  auto rows = joined.collect();
  // Inner join on key 1 only; "a" and "c" both match "x".
  ASSERT_EQ(rows.size(), 2u);
  std::set<std::string> lefts;
  for (const auto& [k, l, r] : rows) {
    EXPECT_EQ(k, 1);
    EXPECT_EQ(r, "x");
    lefts.insert(l);
  }
  EXPECT_EQ(lefts, (std::set<std::string>{"a", "c"}));
}

TEST(Rdd, StagesAreRecorded) {
  SparkFixture f;
  {
    auto rt = f.make_runtime();
    auto r = Rdd<int>::create(rt, {{1, 2, 3}}, int_sizer(), "ints");
    r.map<int>("double", [](const int& x) { return 2 * x; }, int_sizer()).count();
  }
  ASSERT_GE(f.metrics.phases().size(), 2u);
  EXPECT_EQ(f.metrics.phases()[0].name, "ints.double");
  EXPECT_GT(f.metrics.phases()[0].sim_seconds, 0.0);
}

TEST(Rdd, ShuffleBytesRecorded) {
  SparkFixture f;
  {
    auto rt = f.make_runtime();
    using KV = std::pair<int, int>;
    auto pairs = Rdd<KV>::create(rt, {{{1, 1}, {2, 2}}},
                                 [](const KV&) -> std::uint64_t { return 16; }, "kv");
    group_by_key<int, int>(pairs, 2, [](const auto&) -> std::uint64_t { return 32; });
  }
  bool found = false;
  for (const auto& p : f.metrics.phases()) {
    if (p.bytes_shuffled > 0) found = true;
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// memory accounting
// ---------------------------------------------------------------------------

TEST(MemoryManager, AllocateReleaseAndPeak) {
  MemoryManager mm(/*capacity=*/1000000, /*data_scale=*/100.0, /*inflation=*/1.0);
  mm.allocate(1000, "a");  // 100,000 paper bytes
  EXPECT_EQ(mm.live_raw_bytes(), 1000u);
  mm.allocate(2000, "b");
  mm.release(1000);
  EXPECT_EQ(mm.live_raw_bytes(), 2000u);
  EXPECT_EQ(mm.peak_paper_bytes(), 300000u);
}

TEST(MemoryManager, ThrowsOnExhaustion) {
  MemoryManager mm(1000, 10.0, 1.0);  // capacity 1000 paper bytes
  mm.allocate(50, "half");            // 500 paper bytes
  EXPECT_THROW(mm.allocate(60, "too much"), SimOutOfMemory);
  // Failed allocation must not leak into the live count.
  EXPECT_EQ(mm.live_raw_bytes(), 50u);
}

TEST(MemoryManager, InflationMultiplies) {
  MemoryManager mm(1000, 1.0, 4.0);
  EXPECT_THROW(mm.allocate(300, "inflated"), SimOutOfMemory);  // 1200 > 1000
  EXPECT_NO_THROW(mm.allocate(200, "fits"));                   // 800 <= 1000
}

TEST(Rdd, StorageReleasesMemoryOnDestruction) {
  SparkFixture f;
  auto rt = f.make_runtime();
  {
    auto r = Rdd<int>::create(rt, {{1, 2, 3}}, int_sizer(), "scoped");
    EXPECT_EQ(rt.memory().live_raw_bytes(), 24u);
  }
  EXPECT_EQ(rt.memory().live_raw_bytes(), 0u);
}

TEST(Rdd, OomSurfacesThroughCreate) {
  SparkFixture f;
  f.spec.node.memory_bytes = 1024;  // 1 KB node
  auto rt = f.make_runtime(1000.0);
  // 3 ints = 24 raw bytes -> 24,000 paper bytes > 1 KB capacity.
  EXPECT_THROW(Rdd<int>::create(rt, {{1, 2, 3}}, int_sizer(), "big"), SimOutOfMemory);
}

TEST(SparkRuntime, MemoryCapacityUsesReserve) {
  cluster::RunMetrics metrics;
  auto spec = cluster::ClusterSpec::ec2(4);
  SparkConfig config;
  config.memory_fraction = 1.0;
  config.memory_reserve_per_node = 5ULL * 1024 * 1024 * 1024;  // 5 GB of 15
  SparkRuntime rt(spec, 1.0, nullptr, &metrics, config);
  EXPECT_EQ(rt.memory().capacity_bytes(), 4ULL * 10 * 1024 * 1024 * 1024);
}

// ---------------------------------------------------------------------------
// broadcast
// ---------------------------------------------------------------------------

TEST(Broadcast, ValueAccessibleAndMemoryCharged) {
  SparkFixture f;
  f.spec = cluster::ClusterSpec::ec2(4);
  cluster::RunMetrics metrics;
  SparkRuntime rt(f.spec, 1000.0, nullptr, &metrics, f.config);
  {
    Broadcast<std::string> bc(rt, "hello", 100, "greeting");
    EXPECT_EQ(bc.value(), "hello");
    EXPECT_EQ(rt.memory().live_raw_bytes(), 400u);  // 100 bytes x 4 nodes
  }
  EXPECT_EQ(rt.memory().live_raw_bytes(), 0u);
}

TEST(Broadcast, RecordsNetworkStage) {
  SparkFixture f;
  f.spec = cluster::ClusterSpec::ec2(4);
  cluster::RunMetrics metrics;
  SparkRuntime rt(f.spec, 1000.0, nullptr, &metrics, f.config);
  Broadcast<int> bc(rt, 7, 1000, "seven");
  ASSERT_FALSE(metrics.phases().empty());
  EXPECT_EQ(metrics.phases().back().name, "seven");
}

}  // namespace
}  // namespace sjc::rdd

namespace sjc::rdd {
namespace {

TEST(Rdd, UninitializedHandleThrowsNotCrashes) {
  Rdd<int> empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_THROW(empty.count(), InvalidArgument);
  EXPECT_THROW(empty.collect(), InvalidArgument);
  EXPECT_THROW(empty.num_partitions(), InvalidArgument);
  EXPECT_THROW(empty.bytes(), InvalidArgument);
  EXPECT_THROW(empty.filter("f", [](const int&) { return true; }), InvalidArgument);
  const auto try_map = [&] {
    empty.map<int>("m", [](const int& x) { return x; },
                   [](const int&) -> std::uint64_t { return 8; });
  };
  EXPECT_THROW(try_map(), InvalidArgument);
  const auto try_group = [] {
    group_by_key<int, int>(Rdd<std::pair<int, int>>{}, 2,
                           [](const auto&) -> std::uint64_t { return 1; });
  };
  EXPECT_THROW(try_group(), InvalidArgument);
}

TEST(SparkRuntime, InputReadRecordsBytes) {
  cluster::RunMetrics metrics;
  const auto spec = cluster::ClusterSpec::ec2(4);
  SparkRuntime rt(spec, 1000.0, nullptr, &metrics, {});
  rt.record_input_read("scan", 4096, 8);
  ASSERT_EQ(metrics.phases().size(), 1u);
  EXPECT_EQ(metrics.phases()[0].bytes_read, 4096u);
  EXPECT_EQ(metrics.phases()[0].task_count, 8u);
  EXPECT_GT(metrics.phases()[0].sim_seconds, 0.0);
}

TEST(SparkRuntime, BroadcastFreeOnSingleNode) {
  cluster::RunMetrics ws_metrics;
  cluster::RunMetrics ec2_metrics;
  const auto ws = cluster::ClusterSpec::workstation();
  const auto ec2 = cluster::ClusterSpec::ec2(10);
  SparkRuntime ws_rt(ws, 1000.0, nullptr, &ws_metrics, {});
  SparkRuntime ec2_rt(ec2, 1000.0, nullptr, &ec2_metrics, {});
  ws_rt.record_broadcast("bc", 1024 * 1024);
  ec2_rt.record_broadcast("bc", 1024 * 1024);
  // Loopback broadcast costs only the stage overhead; EC2 pays wire time.
  EXPECT_GT(ec2_metrics.total_seconds(), ws_metrics.total_seconds());
}

}  // namespace
}  // namespace sjc::rdd
