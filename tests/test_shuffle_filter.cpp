// Map-side spatial shuffle filter (sFilter analog) property suite.
//
// The load-bearing contract: the filter may only drop true negatives, so a
// run with the filter on must produce a survivor pair set bit-identical to
// the unfiltered run — same result count, same result hash, same refinement
// workload — while the shuffle counters obey assigned == shuffled + filtered.
// The suite checks this at three levels: the raw OccupancyFilter bitmap
// against a test-side mark log, the filtered PartitionScheme::assign_into()
// against the unfiltered one, and full system runs across all four
// partitioners, both Table-2 experiment shapes, and all three systems.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <random>
#include <string>
#include <vector>

#include "core/experiments.hpp"
#include "core/spatial_join.hpp"
#include "geom/occupancy.hpp"
#include "partition/partitioner.hpp"
#include "systems/hadoopgis/hadoop_gis.hpp"
#include "systems/spatialhadoop/spatial_hadoop.hpp"
#include "systems/spatialspark/spatial_spark.hpp"
#include "util/stopwatch.hpp"
#include "workload/generators.hpp"

namespace sjc {
namespace {

// ---------------------------------------------------------------------------
// Level 1: the bitmap itself vs an exact per-cell mark log
// ---------------------------------------------------------------------------

/// A filter plus the exact list of envelopes marked into each cell, so the
/// test can decide ground truth ("does q intersect any marked envelope?")
/// independently of the bitmap.
struct LoggedFilter {
  geom::OccupancyFilter filter;
  std::vector<std::vector<geom::Envelope>> log;

  explicit LoggedFilter(const std::vector<geom::Envelope>& cells)
      : filter(cells), log(cells.size()) {}
  LoggedFilter(const std::vector<geom::Envelope>& cells,
               const geom::OccupancyFilter::Config& config)
      : filter(cells, config), log(cells.size()) {}

  void mark(std::uint32_t cell, const geom::Envelope& env) {
    filter.mark(cell, env);
    log[cell].push_back(env);
  }

  bool truly_matches(std::uint32_t cell, const geom::Envelope& q) const {
    for (const auto& m : log[cell]) {
      if (q.intersects(m)) return true;
    }
    return false;
  }
};

/// may_match() may over-approximate but never under-approximate: whenever any
/// marked envelope intersects the query, it must say yes.
void expect_conservative(const LoggedFilter& lf, std::uint32_t cell,
                         const geom::Envelope& q, const std::string& tag) {
  if (lf.truly_matches(cell, q)) {
    EXPECT_TRUE(lf.filter.may_match(cell, q))
        << tag << " cell " << cell << " dropped a true positive";
  }
}

geom::Envelope random_env(std::mt19937& rng, double lo, double hi,
                          double max_len) {
  std::uniform_real_distribution<double> pos(lo, hi);
  std::uniform_real_distribution<double> len(0.0, max_len);
  const double x = pos(rng);
  const double y = pos(rng);
  return {x, y, x + len(rng), y + len(rng)};
}

TEST(ShuffleFilter, RandomizedConservativeSoundness) {
  std::mt19937 rng(11);
  // Cell sets mixing ordinary boxes with the degenerate shapes partitioners
  // can emit: a point cell, a zero-height sliver, and a giant cell (which
  // the filter upgrades to the large fine side).
  std::vector<geom::Envelope> cells;
  for (int i = 0; i < 12; ++i) cells.push_back(random_env(rng, 0, 100, 25));
  cells.emplace_back(40.0, 40.0, 40.0, 40.0);    // point cell
  cells.emplace_back(0.0, 70.0, 100.0, 70.0);    // zero-height sliver
  cells.emplace_back(-50.0, -50.0, 150.0, 150.0);  // giant (large side)

  const geom::OccupancyFilter::Config configs[] = {
      {},                 // defaults (16 / 48)
      {1, 1, 4.0},        // minimum resolution: domain envelope only
      {64, 64, 4.0},      // maximum resolution
      {200, 7, 0.0},      // out-of-range sides (clamped), everything "large"
  };
  for (std::size_t ci = 0; ci < std::size(configs); ++ci) {
    LoggedFilter lf(cells, configs[ci]);
    const std::string tag = "config" + std::to_string(ci);
    // Before any mark: everything is a provable negative.
    for (std::uint32_t cell = 0; cell < cells.size(); ++cell) {
      EXPECT_FALSE(lf.filter.may_match(cell, random_env(rng, 0, 100, 25)));
    }
    // Mark envelopes into random cells — including envelopes far outside
    // the cell box, which a real assignment never produces but the clamped
    // rasterisation must still absorb soundly.
    std::uniform_int_distribution<std::uint32_t> pick(
        0, static_cast<std::uint32_t>(cells.size() - 1));
    for (int i = 0; i < 300; ++i) {
      lf.mark(pick(rng), random_env(rng, -60, 160, 30));
    }
    EXPECT_EQ(lf.filter.marked_envelopes(), 300u);
    EXPECT_GT(lf.filter.occupied_cells(), 0u);
    EXPECT_GT(lf.filter.size_bytes(), 0u);
    for (int i = 0; i < 500; ++i) {
      const geom::Envelope q = random_env(rng, -80, 180, 40);
      for (std::uint32_t cell = 0; cell < cells.size(); ++cell) {
        expect_conservative(lf, cell, q, tag);
      }
    }
    // Degenerate queries: points, and an envelope covering everything (must
    // match every occupied cell).
    for (int i = 0; i < 200; ++i) {
      const double x = std::uniform_real_distribution<double>(-60, 160)(rng);
      const geom::Envelope q(x, x, x, x);
      for (std::uint32_t cell = 0; cell < cells.size(); ++cell) {
        expect_conservative(lf, cell, q, tag);
      }
    }
    const geom::Envelope everything(-1e9, -1e9, 1e9, 1e9);
    for (std::uint32_t cell = 0; cell < cells.size(); ++cell) {
      EXPECT_EQ(lf.filter.may_match(cell, everything), lf.filter.cell_occupied(cell))
          << tag;
    }
  }
}

// ---------------------------------------------------------------------------
// Level 2: filtered assign_into() vs unfiltered, across all partitioners
// ---------------------------------------------------------------------------

TEST(ShuffleFilter, FilteredAssignDropsOnlyProvableNegatives) {
  std::mt19937 rng(23);
  const geom::Envelope extent(0.0, 0.0, 1000.0, 1000.0);
  std::vector<geom::Envelope> sample;
  for (int i = 0; i < 400; ++i) sample.push_back(random_env(rng, 0, 970, 30));
  for (const auto kind :
       {partition::PartitionerKind::kFixedGrid, partition::PartitionerKind::kStr,
        partition::PartitionerKind::kBsp, partition::PartitionerKind::kQuadtree}) {
    const auto scheme = partition::make_partitions(kind, sample, extent, 29);
    const std::string tag = partition::partitioner_kind_name(kind);
    // "Right side": clustered in the lower-left quadrant, marked exactly the
    // way the systems do — into every cell the envelope is assigned to.
    LoggedFilter lf(scheme.cells());
    std::vector<std::uint32_t> pids;
    for (int i = 0; i < 150; ++i) {
      const geom::Envelope env = random_env(rng, 0, 450, 30);
      scheme.assign_into(env, pids);
      for (const std::uint32_t pid : pids) lf.mark(pid, env);
    }
    // "Left side": spread over (and beyond) the full extent, so upper-right
    // copies are provable negatives and out-of-extent queries exercise the
    // nearest-cell fallback under filtering.
    std::vector<std::uint32_t> unfiltered;
    std::vector<std::uint32_t> filtered;
    std::uint64_t total_dropped = 0;
    for (int i = 0; i < 600; ++i) {
      const geom::Envelope q = random_env(rng, -50, 1050, 40);
      scheme.assign_into(q, unfiltered);
      const std::uint32_t dropped = scheme.assign_into(q, lf.filter, filtered);
      ASSERT_EQ(unfiltered.size(), filtered.size() + dropped) << tag;
      total_dropped += dropped;
      // Survivors are exactly the unfiltered ids that may match; dropped ids
      // are provable negatives by the exact mark log.
      std::size_t fi = 0;
      for (const std::uint32_t pid : unfiltered) {
        if (fi < filtered.size() && filtered[fi] == pid) {
          ++fi;
          continue;
        }
        EXPECT_FALSE(lf.truly_matches(pid, q))
            << tag << " dropped pid " << pid << " with an intersecting mark";
      }
      EXPECT_EQ(fi, filtered.size()) << tag << " survivor not in unfiltered set";
    }
    EXPECT_GT(total_dropped, 0u) << tag << " filter never pruned anything";
  }
}

// ---------------------------------------------------------------------------
// Level 3: full systems — filter on/off bit-identical survivor pairs
// ---------------------------------------------------------------------------

struct Bench {
  workload::Dataset left;
  workload::Dataset right;
  core::JoinQueryConfig query;
  core::ExecutionConfig exec;
  std::string name;
};

Bench make_bench(workload::DatasetId a, workload::DatasetId b, double scale,
                 core::JoinPredicate predicate, const std::string& name) {
  workload::WorkloadConfig wc;
  wc.scale = scale;
  Bench bench{workload::generate(a, wc), workload::generate(b, wc), {}, {}, name};
  bench.query.predicate = predicate;
  bench.exec.cluster = cluster::ClusterSpec::workstation();
  bench.exec.data_scale = 1.0 / wc.scale;
  return bench;
}

/// Runs one system with the filter forced off and on, and requires the
/// filtered run to be output-identical: same success/failure, same pair set
/// (count + hash), same refinement workload (the stronger invariant: a
/// dropped copy would have produced zero local-join candidates), and
/// internally consistent shuffle counters.
void expect_filter_neutral(const core::RunReport& off, const core::RunReport& on,
                           const std::string& tag) {
  // The off run never emits shuffle filter counters; the on run's must add up.
  EXPECT_EQ(off.counters.get("shuffle.assigned_records"), 0u) << tag;
  const std::uint64_t assigned = on.counters.get("shuffle.assigned_records");
  const std::uint64_t shuffled = on.counters.get("shuffle.records");
  const std::uint64_t filtered = on.counters.get("shuffle.filtered_records");
  EXPECT_EQ(assigned, shuffled + filtered) << tag;
  if (on.success) EXPECT_GT(assigned, 0u) << tag;
  if (filtered == 0) {
    EXPECT_EQ(on.counters.get("shuffle.filtered_bytes"), 0u) << tag;
  } else {
    EXPECT_GT(on.counters.get("shuffle.filtered_bytes"), 0u) << tag;
  }
  if (!off.success) {
    // The filter only *removes* modeled load, so it may legitimately rescue
    // a run that overflows a memory or pipe gate unfiltered (that is the
    // point of sFilter) — but there is no pair set to compare against.
    return;
  }
  ASSERT_TRUE(on.success) << tag << " filter broke a succeeding run: "
                          << on.failure_reason;
  EXPECT_EQ(off.result_count, on.result_count) << tag;
  EXPECT_EQ(off.result_hash, on.result_hash) << tag;
  // The stronger invariant: a dropped copy would have produced zero
  // local-join candidates, so the refinement workload is filter-invariant.
  for (const char* key :
       {"refine.candidates", "refine.exact_tests", "refine.early_accepts",
        "refine.early_rejects", "join.pair_lines_before_dedup"}) {
    EXPECT_EQ(off.counters.get(key), on.counters.get(key)) << tag << " " << key;
  }
  // Filtering can only shrink the multi-assignment overhead.
  EXPECT_LE(on.counters.get("partition.duplicated_records"),
            off.counters.get("partition.duplicated_records"))
      << tag;
}

TEST(ShuffleFilter, SystemsBitIdenticalSurvivorPairs) {
  const Bench benches[] = {
      make_bench(workload::DatasetId::kTaxi1m, workload::DatasetId::kNycb, 2e-4,
                 core::JoinPredicate::kWithin, "taxi-nycb"),
      make_bench(workload::DatasetId::kEdges, workload::DatasetId::kLinearwater,
                 2e-5, core::JoinPredicate::kIntersects, "edges-linearwater"),
  };
  for (const Bench& bench : benches) {
    for (const auto kind :
         {partition::PartitionerKind::kFixedGrid, partition::PartitionerKind::kStr,
          partition::PartitionerKind::kBsp,
          partition::PartitionerKind::kQuadtree}) {
      core::JoinQueryConfig query = bench.query;
      query.partitioner = kind;
      const std::string base =
          bench.name + "/" + partition::partitioner_kind_name(kind);
      {
        systems::HadoopGisConfig off_cfg;
        off_cfg.policy.shuffle_filter = false;
        systems::HadoopGisConfig on_cfg;
        on_cfg.policy.shuffle_filter = true;
        expect_filter_neutral(
            systems::run_hadoop_gis(bench.left, bench.right, query, bench.exec,
                                    off_cfg),
            systems::run_hadoop_gis(bench.left, bench.right, query, bench.exec,
                                    on_cfg),
            base + "/hadoopgis");
      }
      {
        systems::SpatialHadoopConfig off_cfg;
        off_cfg.policy.shuffle_filter = false;
        systems::SpatialHadoopConfig on_cfg;
        on_cfg.policy.shuffle_filter = true;
        expect_filter_neutral(
            systems::run_spatial_hadoop(bench.left, bench.right, query,
                                        bench.exec, off_cfg),
            systems::run_spatial_hadoop(bench.left, bench.right, query,
                                        bench.exec, on_cfg),
            base + "/spatialhadoop");
      }
      {
        systems::SpatialSparkConfig off_cfg;
        off_cfg.policy.shuffle_filter = false;
        systems::SpatialSparkConfig on_cfg;
        on_cfg.policy.shuffle_filter = true;
        expect_filter_neutral(
            systems::run_spatial_spark(bench.left, bench.right, query,
                                       bench.exec, off_cfg),
            systems::run_spatial_spark(bench.left, bench.right, query,
                                       bench.exec, on_cfg),
            base + "/spatialspark");
      }
    }
  }
}

TEST(ShuffleFilter, EmptyFilterDropsEverythingFilteredAssign) {
  // An unmarked filter is the degenerate total negative: every copy is
  // provably matchless and the filtered assignment comes back empty — the
  // contract callers rely on when the resident side of a cell is empty.
  std::mt19937 rng(5);
  const geom::Envelope extent(0.0, 0.0, 100.0, 100.0);
  std::vector<geom::Envelope> sample;
  for (int i = 0; i < 50; ++i) sample.push_back(random_env(rng, 0, 95, 5));
  const auto scheme = partition::make_partitions(
      partition::PartitionerKind::kFixedGrid, sample, extent, 9);
  const geom::OccupancyFilter empty_filter(scheme.cells());
  std::vector<std::uint32_t> unfiltered;
  std::vector<std::uint32_t> filtered;
  for (int i = 0; i < 100; ++i) {
    const geom::Envelope q = random_env(rng, -10, 110, 10);
    scheme.assign_into(q, unfiltered);
    const std::uint32_t dropped = scheme.assign_into(q, empty_filter, filtered);
    EXPECT_EQ(dropped, unfiltered.size());
    EXPECT_TRUE(filtered.empty());
  }
}

}  // namespace
}  // namespace sjc
