// Tests for the shared local-join (filter + refine) building block and the
// reference-point duplicate-avoidance machinery.
#include <gtest/gtest.h>

#include <set>

#include "core/local_join.hpp"
#include "util/rng.hpp"

namespace sjc::core {
namespace {

std::vector<geom::Feature> point_features(const std::vector<geom::Coord>& coords,
                                          std::uint64_t base_id = 0) {
  std::vector<geom::Feature> out;
  for (std::size_t i = 0; i < coords.size(); ++i) {
    out.push_back({base_id + i, geom::Geometry::point(coords[i].x, coords[i].y)});
  }
  return out;
}

TEST(ReferencePoint, TopLeftOfIntersection) {
  const geom::Envelope a(0, 0, 4, 4);
  const geom::Envelope b(2, 1, 6, 5);
  const geom::Coord p = reference_point(a, b);
  EXPECT_EQ(p.x, 2.0);
  EXPECT_EQ(p.y, 1.0);
  // Symmetric.
  const geom::Coord q = reference_point(b, a);
  EXPECT_EQ(q.x, p.x);
  EXPECT_EQ(q.y, p.y);
}

TEST(EvaluatePredicate, AllThreePredicates) {
  const auto& engine = geom::GeometryEngine::prepared();
  const geom::Geometry poly =
      geom::Geometry::polygon({{0, 0}, {4, 0}, {4, 4}, {0, 4}, {0, 0}});
  const geom::Geometry inside = geom::Geometry::point(2, 2);
  const geom::Geometry outside = geom::Geometry::point(7, 2);
  EXPECT_TRUE(evaluate_predicate(engine, JoinPredicate::kIntersects, 0, inside, poly));
  EXPECT_TRUE(evaluate_predicate(engine, JoinPredicate::kWithin, 0, inside, poly));
  EXPECT_FALSE(evaluate_predicate(engine, JoinPredicate::kWithin, 0, outside, poly));
  EXPECT_TRUE(
      evaluate_predicate(engine, JoinPredicate::kWithinDistance, 3.0, outside, poly));
  EXPECT_FALSE(
      evaluate_predicate(engine, JoinPredicate::kWithinDistance, 2.0, outside, poly));
}

TEST(LocalJoin, EmptySidesProduceNothing) {
  LocalJoinSpec spec;
  std::vector<JoinPair> out;
  run_local_join({}, {}, spec, nullptr, out);
  EXPECT_TRUE(out.empty());
}

TEST(LocalJoin, PointInPolygonPairs) {
  const auto left = point_features({{1, 1}, {5, 5}, {2, 3}});
  std::vector<geom::Feature> right = {
      {100, geom::Geometry::polygon({{0, 0}, {4, 0}, {4, 4}, {0, 4}, {0, 0}})}};
  LocalJoinSpec spec;
  spec.predicate = JoinPredicate::kWithin;
  std::vector<JoinPair> out;
  run_local_join(left, right, spec, nullptr, out);
  std::set<JoinPair> got(out.begin(), out.end());
  EXPECT_EQ(got, (std::set<JoinPair>{{0, 100}, {2, 100}}));
}

TEST(LocalJoin, EnginesProduceIdenticalPairs) {
  Rng rng(99);
  std::vector<geom::Feature> left;
  for (std::uint64_t i = 0; i < 300; ++i) {
    left.push_back({i, geom::Geometry::point(rng.uniform(0, 50), rng.uniform(0, 50))});
  }
  std::vector<geom::Feature> right;
  for (std::uint64_t i = 0; i < 30; ++i) {
    const double x = rng.uniform(0, 45);
    const double y = rng.uniform(0, 45);
    right.push_back({i, geom::Geometry::polygon({{x, y}, {x + 5, y}, {x + 5, y + 5},
                                                 {x, y + 5}, {x, y}})});
  }
  const auto run_with = [&](const geom::GeometryEngine& engine) {
    LocalJoinSpec spec;
    spec.engine = &engine;
    spec.predicate = JoinPredicate::kWithin;
    std::vector<JoinPair> out;
    run_local_join(left, right, spec, nullptr, out);
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(run_with(geom::GeometryEngine::simple()),
            run_with(geom::GeometryEngine::prepared()));
}

TEST(LocalJoin, AllAlgorithmsProduceIdenticalPairs) {
  Rng rng(7);
  std::vector<geom::Feature> left;
  std::vector<geom::Feature> right;
  for (std::uint64_t i = 0; i < 150; ++i) {
    const double x = rng.uniform(0, 30);
    const double y = rng.uniform(0, 30);
    left.push_back({i, geom::Geometry::line_string({{x, y}, {x + 2, y + 2}})});
    const double u = rng.uniform(0, 30);
    const double v = rng.uniform(0, 30);
    right.push_back({i, geom::Geometry::line_string({{u, v + 2}, {u + 2, v}})});
  }
  std::vector<std::vector<JoinPair>> results;
  for (const auto algo :
       {index::LocalJoinAlgorithm::kPlaneSweep, index::LocalJoinAlgorithm::kSyncTraversal,
        index::LocalJoinAlgorithm::kIndexedNestedLoop,
        index::LocalJoinAlgorithm::kIndexedNestedLoopDynamic,
        index::LocalJoinAlgorithm::kNestedLoop}) {
    LocalJoinSpec spec;
    spec.algorithm = algo;
    std::vector<JoinPair> out;
    run_local_join(left, right, spec, nullptr, out);
    std::sort(out.begin(), out.end());
    results.push_back(std::move(out));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], results[0]);
  }
  EXPECT_GT(results[0].size(), 0u);
}

// Cross-algorithm x cross-path equivalence: every MBR-join algorithm,
// through both the std::function compatibility overload and the templated
// scratch-reusing hot path (with and without a PreparedCache), must produce
// the same pair multiset on seeded random workloads.
TEST(LocalJoin, AllAlgorithmsAndPathsProduceIdenticalPairs) {
  for (const std::uint64_t seed : {11u, 23u, 37u}) {
    Rng rng(seed);
    std::vector<geom::Feature> left;
    std::vector<geom::Feature> right;
    for (std::uint64_t i = 0; i < 120; ++i) {
      const double x = rng.uniform(0, 25);
      const double y = rng.uniform(0, 25);
      left.push_back({i, geom::Geometry::line_string({{x, y}, {x + 2, y + 2}})});
      const double u = rng.uniform(0, 25);
      const double v = rng.uniform(0, 25);
      right.push_back({1000 + i, geom::Geometry::polygon(
                                     {{u, v}, {u + 3, v}, {u + 3, v + 3},
                                      {u, v + 3}, {u, v}})});
    }

    // Scratch and cache are shared across all algorithm runs on purpose:
    // reuse across heterogeneous calls must not leak state between runs.
    LocalJoinScratch scratch;
    geom::PreparedCache cache;
    std::vector<std::vector<JoinPair>> results;
    for (const auto algo :
         {index::LocalJoinAlgorithm::kPlaneSweep,
          index::LocalJoinAlgorithm::kSyncTraversal,
          index::LocalJoinAlgorithm::kIndexedNestedLoop,
          index::LocalJoinAlgorithm::kIndexedNestedLoopDynamic,
          index::LocalJoinAlgorithm::kNestedLoop}) {
      LocalJoinSpec spec;
      spec.algorithm = algo;

      std::vector<JoinPair> via_function;
      run_local_join(left, right, spec, nullptr, via_function);
      std::sort(via_function.begin(), via_function.end());
      results.push_back(std::move(via_function));

      std::vector<JoinPair> via_template;
      run_local_join(std::span<const geom::Feature>(left),
                     std::span<const geom::Feature>(right), spec, AcceptAllPairs{},
                     scratch, via_template);
      std::sort(via_template.begin(), via_template.end());
      results.push_back(std::move(via_template));

      spec.prepared_cache = &cache;
      std::vector<JoinPair> via_cache;
      run_local_join(std::span<const geom::Feature>(left),
                     std::span<const geom::Feature>(right), spec, AcceptAllPairs{},
                     scratch, via_cache);
      std::sort(via_cache.begin(), via_cache.end());
      results.push_back(std::move(via_cache));
    }
    for (std::size_t i = 1; i < results.size(); ++i) {
      EXPECT_EQ(results[i], results[0]) << "seed " << seed << " variant " << i;
    }
    EXPECT_GT(results[0].size(), 0u);
    // Second and later algorithms re-bind the same right features: the
    // cache must have served hits (engine default is Prepared).
    EXPECT_GT(cache.hits(), 0u);
  }
}

// Batched vs per-pair refinement: spec.batch_refine must not change a
// single emitted pair — not even their order — across predicates and cache
// configurations, and the refine.* counters must account every candidate.
TEST(LocalJoin, BatchRefineOnOffBitIdenticalWithAccounting) {
  for (const std::uint64_t seed : {5u, 17u}) {
    Rng rng(seed);
    std::vector<geom::Feature> left;
    std::vector<geom::Feature> right;
    for (std::uint64_t i = 0; i < 100; ++i) {
      const double x = rng.uniform(0, 25);
      const double y = rng.uniform(0, 25);
      // Mixed probe types so the batched point pass and the scalar
      // dispatch both engage.
      if (i % 3 == 0) {
        left.push_back({i, geom::Geometry::point(x, y)});
      } else {
        left.push_back({i, geom::Geometry::line_string({{x, y}, {x + 2, y + 2}})});
      }
      const double u = rng.uniform(0, 25);
      const double v = rng.uniform(0, 25);
      right.push_back({1000 + i, geom::Geometry::polygon(
                                     {{u, v}, {u + 3, v}, {u + 3, v + 3},
                                      {u, v + 3}, {u, v}})});
    }
    for (const auto predicate :
         {JoinPredicate::kIntersects, JoinPredicate::kWithin,
          JoinPredicate::kWithinDistance}) {
      for (const bool use_cache : {false, true}) {
        geom::PreparedCache cache;
        LocalJoinScratch scratch;
        const auto run = [&](bool batch) {
          cluster::Counters counters;
          LocalJoinSpec spec;
          spec.predicate = predicate;
          spec.within_distance = predicate == JoinPredicate::kWithinDistance ? 1.5 : 0.0;
          spec.batch_refine = batch;
          spec.prepared_cache = use_cache ? &cache : nullptr;
          spec.refine_counters = &counters;
          std::vector<JoinPair> out;
          run_local_join(std::span<const geom::Feature>(left),
                         std::span<const geom::Feature>(right), spec, AcceptAllPairs{},
                         scratch, out);
          return std::pair(std::move(out), counters.snapshot());
        };
        const auto [pairs_off, counters_off] = run(false);
        const auto [pairs_on, counters_on] = run(true);
        // Bit-identical including emission order.
        EXPECT_EQ(pairs_on, pairs_off)
            << "seed " << seed << " predicate " << static_cast<int>(predicate);
        EXPECT_GT(pairs_on.size(), 0u);
        const auto get = [](const std::map<std::string, std::uint64_t>& m,
                            const char* key) {
          const auto it = m.find(key);
          return it == m.end() ? std::uint64_t{0} : it->second;
        };
        const std::uint64_t cand = get(counters_off, "refine.candidates");
        EXPECT_EQ(get(counters_on, "refine.candidates"), cand);
        EXPECT_GT(cand, 0u);
        // Per-pair mode: every candidate is an exact test.
        EXPECT_EQ(get(counters_off, "refine.exact_tests"), cand);
        EXPECT_EQ(get(counters_off, "refine.early_accepts"), 0u);
        EXPECT_EQ(get(counters_off, "refine.early_rejects"), 0u);
        // Batched mode: the three buckets partition the candidates.
        EXPECT_EQ(get(counters_on, "refine.exact_tests") +
                      get(counters_on, "refine.early_accepts") +
                      get(counters_on, "refine.early_rejects"),
                  cand);
        // Both modes: every exact test is classified fastpath or slowpath
        // by the adaptive exact predicate.
        EXPECT_EQ(get(counters_off, "refine.exact_fastpath") +
                      get(counters_off, "refine.exact_slowpath"),
                  get(counters_off, "refine.exact_tests"));
        EXPECT_EQ(get(counters_on, "refine.exact_fastpath") +
                      get(counters_on, "refine.exact_slowpath"),
                  get(counters_on, "refine.exact_tests"));
      }
    }
  }
}

TEST(LocalJoin, AcceptFilterDropsPairs) {
  const auto left = point_features({{1, 1}, {2, 2}});
  std::vector<geom::Feature> right = {
      {9, geom::Geometry::polygon({{0, 0}, {4, 0}, {4, 4}, {0, 4}, {0, 0}})}};
  LocalJoinSpec spec;
  spec.predicate = JoinPredicate::kWithin;
  std::vector<JoinPair> out;
  run_local_join(left, right, spec,
                 [](const geom::Envelope& le, const geom::Envelope&) {
                   return le.min_x() > 1.5;  // keep only the (2,2) point
                 },
                 out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].left_id, 1u);
}

TEST(LocalJoin, WithinDistancePredicate) {
  const auto left = point_features({{0, 0}, {0, 10}});
  std::vector<geom::Feature> right = {
      {5, geom::Geometry::line_string({{3, -5}, {3, 5}})}};
  LocalJoinSpec spec;
  spec.predicate = JoinPredicate::kWithinDistance;
  spec.within_distance = 4.0;
  std::vector<JoinPair> out;
  run_local_join(left, right, spec, nullptr, out);
  // (0,0) is 3 away from the line; (0,10) is ~5.8 away.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].left_id, 0u);
}

TEST(HashPairs, OrderIndependentAndMultisetSensitive) {
  const std::vector<JoinPair> a = {{1, 2}, {3, 4}};
  const std::vector<JoinPair> b = {{3, 4}, {1, 2}};
  const std::vector<JoinPair> c = {{1, 2}};
  const std::vector<JoinPair> d = {{1, 2}, {3, 5}};
  EXPECT_EQ(hash_pairs_unordered(a), hash_pairs_unordered(b));
  EXPECT_NE(hash_pairs_unordered(a), hash_pairs_unordered(c));
  EXPECT_NE(hash_pairs_unordered(a), hash_pairs_unordered(d));
  EXPECT_EQ(hash_pairs_unordered({}), 0u);
}

TEST(Config, EffectiveTargetPartitions) {
  JoinQueryConfig query;
  const auto ws = cluster::ClusterSpec::workstation();
  EXPECT_EQ(effective_target_partitions(query, ws), 128u);
  query.target_partitions = 42;
  EXPECT_EQ(effective_target_partitions(query, ws), 42u);
  query.target_partitions = 0;
  const auto big = cluster::ClusterSpec::ec2(12);  // 96 slots -> 192 cells
  EXPECT_EQ(effective_target_partitions(query, big), 192u);
}

TEST(Config, EffectiveSampleRateFloors) {
  EXPECT_DOUBLE_EQ(effective_sample_rate(0.01, 1000000, 128), 0.01);
  EXPECT_DOUBLE_EQ(effective_sample_rate(0.01, 40, 128), 1.0);
  EXPECT_DOUBLE_EQ(effective_sample_rate(0.5, 40, 128), 1.0);
  EXPECT_DOUBLE_EQ(effective_sample_rate(0.01, 0, 128), 1.0);
  // Floor = 4 * cells / size.
  EXPECT_DOUBLE_EQ(effective_sample_rate(0.0, 1024, 128), 0.5);
}

}  // namespace
}  // namespace sjc::core
