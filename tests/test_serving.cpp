// Serving-layer tests: resident-vs-cold parity for all three systems on
// both Table-2 experiment shapes, cross-query PreparedCache reuse,
// admission control, DRR fairness, and interleaved multi-tenant
// bit-identity against serial execution.
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <set>
#include <vector>

#include "serving/query_service.hpp"
#include "serving/resident_catalog.hpp"
#include "workload/generators.hpp"

namespace sjc {
namespace {

struct Workbench {
  workload::Dataset points;
  workload::Dataset polys;
  workload::Dataset lines_a;
  workload::Dataset lines_b;
  core::ExecutionConfig exec;

  static const Workbench& instance() {
    static const Workbench bench = [] {
      Workbench w;
      workload::WorkloadConfig wc;
      wc.scale = 2e-4;
      w.points = workload::generate(workload::DatasetId::kTaxi1m, wc);
      w.polys = workload::generate(workload::DatasetId::kNycb, wc);
      w.lines_a = workload::generate(workload::DatasetId::kEdges01, wc);
      w.lines_b = workload::generate(workload::DatasetId::kLinearwater01, wc);
      w.exec.cluster = cluster::ClusterSpec::workstation();
      w.exec.data_scale = 1.0 / wc.scale;
      w.exec.collect_pairs = true;
      return w;
    }();
    return bench;
  }
};

std::vector<core::JoinPair> sorted_pairs(core::RunReport report) {
  std::sort(report.pairs.begin(), report.pairs.end());
  return report.pairs;
}

/// Counters under `prefix` from a report (refine.*, shuffle.*, ...).
std::map<std::string, std::uint64_t> counters_with_prefix(const core::RunReport& r,
                                                          const std::string& prefix) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, value] : r.counters.snapshot()) {
    if (name.compare(0, prefix.size(), prefix) == 0) out[name] = value;
  }
  return out;
}

serving::ResidentEntryConfig entry_config(core::SystemKind system,
                                          core::JoinPredicate predicate) {
  const auto& w = Workbench::instance();
  serving::ResidentEntryConfig config;
  config.system = system;
  config.build_query.predicate = predicate;
  config.exec = w.exec;
  // The gate has its own dedicated tests; parity tests run near the WS
  // pipe limit (see test_systems.cpp).
  config.hadoop_gis.pipe_capacity_fraction = 0.0;
  return config;
}

core::RunReport run_cold(core::SystemKind system, const workload::Dataset& left,
                         const workload::Dataset& right,
                         const serving::ResidentEntryConfig& config) {
  switch (system) {
    case core::SystemKind::kHadoopGisSim:
      return systems::run_hadoop_gis(left, right, config.build_query, config.exec,
                                     config.hadoop_gis);
    case core::SystemKind::kSpatialHadoopSim:
      return systems::run_spatial_hadoop(left, right, config.build_query, config.exec,
                                         config.spatial_hadoop);
    case core::SystemKind::kSpatialSparkSim:
      return systems::run_spatial_spark(left, right, config.build_query, config.exec,
                                        config.spatial_spark);
  }
  throw InvalidArgument("unknown system");
}

// ---------------------------------------------------------------------------
// Resident parity: bit-identical pairs and counters vs the cold batch path
// ---------------------------------------------------------------------------

class ResidentParity : public ::testing::TestWithParam<core::SystemKind> {};

void expect_parity(core::SystemKind system, const workload::Dataset& left,
                   const workload::Dataset& right, core::JoinPredicate predicate) {
  const auto config = entry_config(system, predicate);
  const core::RunReport cold = run_cold(system, left, right, config);
  ASSERT_TRUE(cold.success) << cold.failure_reason;

  serving::ResidentCatalog catalog;
  const auto entry = catalog.install("pair", left, right, config);
  const core::RunReport resident = entry->run_join(config.build_query);
  ASSERT_TRUE(resident.success) << resident.failure_reason;

  // Bit-identical survivor pair sets.
  EXPECT_EQ(cold.result_count, resident.result_count);
  EXPECT_EQ(cold.result_hash, resident.result_hash);
  EXPECT_EQ(sorted_pairs(cold), sorted_pairs(resident));

  // Identical refinement and shuffle accounting: the resident path must
  // re-execute (or replay) exactly the work the cold path did.
  EXPECT_EQ(counters_with_prefix(cold, "refine."),
            counters_with_prefix(resident, "refine."));
  EXPECT_EQ(counters_with_prefix(cold, "shuffle."),
            counters_with_prefix(resident, "shuffle."));

  // Ingest is amortized: a resident query reports zero indexing time.
  // (SpatialSpark reports NaN on both paths — the paper's note that Spark
  // stages cannot be attributed — so only TOT is comparable there.)
  if (system != core::SystemKind::kSpatialSparkSim) {
    EXPECT_EQ(resident.index_a_seconds, 0.0);
    EXPECT_EQ(resident.index_b_seconds, 0.0);
  }
}

TEST_P(ResidentParity, PointInPolygonJoin) {
  const auto& w = Workbench::instance();
  expect_parity(GetParam(), w.points, w.polys, core::JoinPredicate::kWithin);
}

TEST_P(ResidentParity, PolylineIntersectionJoin) {
  const auto& w = Workbench::instance();
  expect_parity(GetParam(), w.lines_a, w.lines_b, core::JoinPredicate::kIntersects);
}

INSTANTIATE_TEST_SUITE_P(AllSystems, ResidentParity,
                         ::testing::Values(core::SystemKind::kHadoopGisSim,
                                           core::SystemKind::kSpatialHadoopSim,
                                           core::SystemKind::kSpatialSparkSim),
                         [](const auto& info) {
                           switch (info.param) {
                             case core::SystemKind::kHadoopGisSim:
                               return std::string("HadoopGis");
                             case core::SystemKind::kSpatialHadoopSim:
                               return std::string("SpatialHadoop");
                             case core::SystemKind::kSpatialSparkSim:
                               return std::string("SpatialSpark");
                           }
                           return std::string("Unknown");
                         });

// ---------------------------------------------------------------------------
// Cross-query PreparedCache reuse
// ---------------------------------------------------------------------------

TEST(ResidentCache, SecondQueryHitsSharedPreparedCache) {
  const auto& w = Workbench::instance();
  serving::ResidentCatalog catalog;
  const auto config =
      entry_config(core::SystemKind::kSpatialHadoopSim, core::JoinPredicate::kWithin);
  const auto entry = catalog.install("taxi-nycb", w.points, w.polys, config);

  const auto first = entry->run_join(config.build_query);
  ASSERT_TRUE(first.success) << first.failure_reason;
  const std::uint64_t hits_after_first = entry->prepared_cache().hits();

  const auto second = entry->run_join(config.build_query);
  ASSERT_TRUE(second.success) << second.failure_reason;
  EXPECT_EQ(first.result_hash, second.result_hash);

  // The second query's bind() lookups land on handles the first one
  // populated: cross-query reuse must produce real hits.
  const auto& cache = entry->prepared_cache();
  EXPECT_GT(cache.hits(), hits_after_first);
  EXPECT_GT(cache.hit_rate(), 0.0);
  EXPECT_EQ(cache.hits() + cache.misses(), cache.lookups());

  // Per-query counter deltas stay balanced even though the shared cache
  // carries history: each report counts only its own lookups.
  const std::uint64_t q1 = first.counters.get("join.prepared_cache_hits") +
                           first.counters.get("join.prepared_cache_misses");
  const std::uint64_t q2 = second.counters.get("join.prepared_cache_hits") +
                           second.counters.get("join.prepared_cache_misses");
  EXPECT_EQ(q1 + q2, cache.lookups());
  EXPECT_GT(second.counters.get("join.prepared_cache_hits"),
            first.counters.get("join.prepared_cache_hits"));
}

// ---------------------------------------------------------------------------
// Range and k-NN from resident STR trees
// ---------------------------------------------------------------------------

TEST(ResidentRangeKnn, MatchesBruteForce) {
  const auto& w = Workbench::instance();
  serving::ResidentCatalog catalog;
  const auto entry = catalog.install(
      "taxi-nycb", w.points, w.polys,
      entry_config(core::SystemKind::kSpatialHadoopSim, core::JoinPredicate::kWithin));

  const geom::Envelope window(-74.0, 40.7, -73.9, 40.8);
  const auto ids = entry->run_range(window, /*left_side=*/true);
  std::vector<std::uint32_t> expect;
  const auto envs = w.points.envelopes();
  for (std::size_t i = 0; i < envs.size(); ++i) {
    if (envs[i].intersects(window)) expect.push_back(static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(ids, expect);
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));

  const auto hits = entry->run_knn(window, 5, /*left_side=*/false);
  ASSERT_EQ(hits.size(), std::min<std::size_t>(5, w.polys.size()));
  for (std::size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LE(hits[i - 1].distance, hits[i].distance);
  }
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(QueryServiceAdmission, BoundedQueueRejectsWithResourceExhausted) {
  const auto& w = Workbench::instance();
  serving::ResidentCatalog catalog;
  const auto config =
      entry_config(core::SystemKind::kSpatialHadoopSim, core::JoinPredicate::kWithin);
  catalog.install("taxi-nycb", w.points, w.polys, config);

  serving::QueryServiceConfig sc;
  sc.workers = 1;
  sc.max_queue_depth = 2;
  sc.max_queued_per_tenant = 8;
  serving::QueryService service(catalog, sc);

  serving::Query query;
  query.kind = serving::QueryKind::kSpatialJoin;
  query.entry = "taxi-nycb";
  query.join = config.build_query;

  // A join runs for milliseconds; eight back-to-back submissions outpace
  // the single worker, so the 2-deep queue must overflow.
  std::vector<std::future<serving::QueryResult>> accepted;
  std::size_t rejected = 0;
  for (int i = 0; i < 8; ++i) {
    auto sub = service.submit("t0", query);
    if (sub.status.ok()) {
      accepted.push_back(std::move(sub.result));
    } else {
      EXPECT_EQ(sub.status.code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  EXPECT_GE(rejected, 1u);
  EXPECT_GE(accepted.size(), 1u);
  for (auto& f : accepted) {
    const auto result = f.get();
    EXPECT_TRUE(result.status.ok()) << result.status.to_string();
    EXPECT_TRUE(result.report.success);
  }

  service.drain();
  const auto late = service.submit("t0", query);
  EXPECT_EQ(late.status.code(), StatusCode::kUnavailable);

  const auto stats = service.tenant_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].submitted, 9u);
  EXPECT_EQ(stats[0].rejected, rejected + 1);
  EXPECT_EQ(stats[0].completed, accepted.size());
}

TEST(QueryServiceAdmission, UnknownEntryFailsTheQueryNotTheService) {
  const auto& w = Workbench::instance();
  serving::ResidentCatalog catalog;
  catalog.install(
      "taxi-nycb", w.points, w.polys,
      entry_config(core::SystemKind::kSpatialHadoopSim, core::JoinPredicate::kWithin));
  serving::QueryService service(catalog);

  serving::Query query;
  query.kind = serving::QueryKind::kRange;
  query.entry = "no-such-entry";
  auto sub = service.submit("t0", query);
  ASSERT_TRUE(sub.status.ok());
  const auto result = sub.result.get();
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// DRR fairness
// ---------------------------------------------------------------------------

TEST(QueryServiceFairness, BacklogsInterleaveAcrossTenants) {
  const auto& w = Workbench::instance();
  serving::ResidentCatalog catalog;
  catalog.install(
      "taxi-nycb", w.points, w.polys,
      entry_config(core::SystemKind::kSpatialHadoopSim, core::JoinPredicate::kWithin));

  serving::QueryServiceConfig sc;
  sc.workers = 1;
  sc.max_queue_depth = 64;
  sc.max_queued_per_tenant = 32;
  serving::QueryService service(catalog, sc);

  // Pin the single worker on a join for a few milliseconds so both range
  // backlogs are fully queued before anything dispatches — without this the
  // worker would drain tenant-a's microsecond queries before tenant-b even
  // submits, and the ordering assertion below would be a race, not a
  // scheduling property.
  serving::Query blocker;
  blocker.kind = serving::QueryKind::kSpatialJoin;
  blocker.entry = "taxi-nycb";
  blocker.join.predicate = core::JoinPredicate::kWithin;
  auto warmup = service.submit("warmup", blocker);
  ASSERT_TRUE(warmup.status.ok());

  serving::Query query;
  query.kind = serving::QueryKind::kRange;
  query.entry = "taxi-nycb";
  query.window = geom::Envelope(-74.05, 40.6, -73.8, 40.9);

  // Tenant A enqueues its whole backlog first; strict FIFO would then
  // finish all of A before touching B. DRR must interleave them.
  std::vector<std::future<serving::QueryResult>> futures;
  for (int i = 0; i < 12; ++i) {
    auto sub = service.submit("tenant-a", query);
    ASSERT_TRUE(sub.status.ok());
    futures.push_back(std::move(sub.result));
  }
  for (int i = 0; i < 12; ++i) {
    auto sub = service.submit("tenant-b", query);
    ASSERT_TRUE(sub.status.ok());
    futures.push_back(std::move(sub.result));
  }
  EXPECT_TRUE(warmup.result.get().status.ok());
  for (auto& f : futures) EXPECT_TRUE(f.get().status.ok());
  service.drain();

  // Spans carry arrival as sim_start; dispatch order is completion order on
  // the single worker, so sort by sim_end before checking interleaving.
  auto timeline = service.timeline();
  ASSERT_EQ(timeline.spans.size(), 25u);
  std::stable_sort(timeline.spans.begin(), timeline.spans.end(),
                   [](const auto& a, const auto& b) { return a.sim_end < b.sim_end; });
  std::size_t first_b = timeline.spans.size();
  std::size_t seen = 0;
  for (std::size_t i = 0; i < timeline.spans.size(); ++i) {
    if (timeline.spans[i].phase == "tenant/warmup") continue;
    if (timeline.spans[i].phase == "tenant/tenant-b" && first_b > seen) first_b = seen;
    ++seen;
  }
  EXPECT_LT(first_b, 12u);

  const auto footer = service.tenant_footer();
  ASSERT_EQ(footer.size(), 3u);
  std::size_t range_queries = 0;
  for (const auto& row : footer) {
    if (row.tenant != "warmup") range_queries += row.queries;
  }
  EXPECT_EQ(range_queries, 24u);
}

// ---------------------------------------------------------------------------
// Interleaved multi-tenant execution is bit-identical to serial
// ---------------------------------------------------------------------------

TEST(QueryServiceInterleaving, TwoTenantsOnOnePoolMatchSerialRuns) {
  const auto& w = Workbench::instance();
  serving::ResidentCatalog catalog;
  const auto within_config =
      entry_config(core::SystemKind::kSpatialHadoopSim, core::JoinPredicate::kWithin);
  const auto intersects_config = entry_config(core::SystemKind::kSpatialSparkSim,
                                              core::JoinPredicate::kIntersects);
  const auto e1 = catalog.install("taxi-nycb", w.points, w.polys, within_config);
  const auto e2 = catalog.install("edges-water", w.lines_a, w.lines_b,
                                  intersects_config);

  // Serial reference: one resident run per entry, no concurrency.
  const auto serial1 = e1->run_join(within_config.build_query);
  const auto serial2 = e2->run_join(intersects_config.build_query);
  ASSERT_TRUE(serial1.success);
  ASSERT_TRUE(serial2.success);

  serving::QueryServiceConfig sc;
  sc.workers = 2;  // both tenants' queries genuinely overlap on the pool
  sc.max_queue_depth = 64;
  sc.max_queued_per_tenant = 32;
  serving::QueryService service(catalog, sc);

  serving::Query q1;
  q1.entry = "taxi-nycb";
  q1.join = within_config.build_query;
  serving::Query q2;
  q2.entry = "edges-water";
  q2.join = intersects_config.build_query;

  std::vector<std::future<serving::QueryResult>> f1, f2;
  for (int i = 0; i < 3; ++i) {
    auto s1 = service.submit("tenant-a", q1);
    auto s2 = service.submit("tenant-b", q2);
    ASSERT_TRUE(s1.status.ok());
    ASSERT_TRUE(s2.status.ok());
    f1.push_back(std::move(s1.result));
    f2.push_back(std::move(s2.result));
  }
  for (auto& f : f1) {
    const auto r = f.get();
    ASSERT_TRUE(r.report.success) << r.report.failure_reason;
    EXPECT_EQ(sorted_pairs(r.report), sorted_pairs(serial1));
    EXPECT_EQ(r.report.result_hash, serial1.result_hash);
  }
  for (auto& f : f2) {
    const auto r = f.get();
    ASSERT_TRUE(r.report.success) << r.report.failure_reason;
    EXPECT_EQ(sorted_pairs(r.report), sorted_pairs(serial2));
    EXPECT_EQ(r.report.result_hash, serial2.result_hash);
  }
}

// ---------------------------------------------------------------------------
// Catalog lifecycle
// ---------------------------------------------------------------------------

TEST(ResidentCatalogLifecycle, InstallFindEraseReplace) {
  const auto& w = Workbench::instance();
  serving::ResidentCatalog catalog;
  const auto config =
      entry_config(core::SystemKind::kSpatialSparkSim, core::JoinPredicate::kWithin);
  const auto entry = catalog.install("e", w.points, w.polys, config);
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_EQ(catalog.find("e"), entry);
  EXPECT_EQ(catalog.find("missing"), nullptr);
  EXPECT_TRUE(entry->build_report().success);

  // Replace: a held shared_ptr keeps answering from the old state.
  const auto replacement = catalog.install("e", w.points, w.polys, config);
  EXPECT_NE(catalog.find("e"), entry);
  const auto old_report = entry->run_join(config.build_query);
  EXPECT_TRUE(old_report.success);

  EXPECT_TRUE(catalog.erase("e"));
  EXPECT_FALSE(catalog.erase("e"));
  EXPECT_EQ(catalog.size(), 0u);
}

}  // namespace
}  // namespace sjc
