// Unit tests for geometry value types: construction, validation, envelopes,
// coordinate counting and equality.
#include <gtest/gtest.h>

#include "geom/geometry.hpp"
#include "util/status.hpp"

namespace sjc::geom {
namespace {

Ring unit_square_ring() {
  return {{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0, 0}};
}

TEST(Geometry, PointBasics) {
  const Geometry p = Geometry::point(3.0, -4.0);
  EXPECT_EQ(p.type(), GeomType::kPoint);
  EXPECT_EQ(p.as_point().x, 3.0);
  EXPECT_EQ(p.as_point().y, -4.0);
  EXPECT_EQ(p.num_coords(), 1u);
  EXPECT_EQ(p.envelope(), Envelope::of_point(3.0, -4.0));
  EXPECT_FALSE(p.is_areal());
}

TEST(Geometry, LineStringBasics) {
  const Geometry l = Geometry::line_string({{0, 0}, {2, 0}, {2, 3}});
  EXPECT_EQ(l.type(), GeomType::kLineString);
  EXPECT_EQ(l.num_coords(), 3u);
  EXPECT_EQ(l.envelope(), Envelope(0, 0, 2, 3));
}

TEST(Geometry, LineStringNeedsTwoPoints) {
  EXPECT_THROW(Geometry::line_string({{0, 0}}), InvalidArgument);
  EXPECT_THROW(Geometry::line_string({}), InvalidArgument);
}

TEST(Geometry, PolygonBasics) {
  const Geometry poly = Geometry::polygon(unit_square_ring());
  EXPECT_EQ(poly.type(), GeomType::kPolygon);
  EXPECT_EQ(poly.num_coords(), 5u);
  EXPECT_EQ(poly.envelope(), Envelope(0, 0, 1, 1));
  EXPECT_TRUE(poly.is_areal());
}

TEST(Geometry, PolygonWithHoleCountsAllCoords) {
  Ring hole = {{0.25, 0.25}, {0.75, 0.25}, {0.75, 0.75}, {0.25, 0.75}, {0.25, 0.25}};
  const Geometry poly = Geometry::polygon(unit_square_ring(), {hole});
  EXPECT_EQ(poly.num_coords(), 10u);
  EXPECT_EQ(poly.as_polygon().holes.size(), 1u);
}

TEST(Geometry, PolygonRejectsOpenRing) {
  Ring open = {{0, 0}, {1, 0}, {1, 1}, {0, 1}};  // not closed
  EXPECT_THROW(Geometry::polygon(std::move(open)), InvalidArgument);
}

TEST(Geometry, PolygonRejectsTinyRing) {
  Ring tiny = {{0, 0}, {1, 0}, {0, 0}};
  EXPECT_THROW(Geometry::polygon(std::move(tiny)), InvalidArgument);
}

TEST(Geometry, PolygonRejectsBadHole) {
  Ring bad_hole = {{0.2, 0.2}, {0.4, 0.2}, {0.4, 0.4}, {0.2, 0.4}};  // open
  EXPECT_THROW(Geometry::polygon(unit_square_ring(), {bad_hole}), InvalidArgument);
}

TEST(Geometry, MultiLineString) {
  const Geometry m = Geometry::multi_line_string(
      {LineString{{{0, 0}, {1, 1}}}, LineString{{{5, 5}, {6, 5}, {7, 5}}}});
  EXPECT_EQ(m.type(), GeomType::kMultiLineString);
  EXPECT_EQ(m.num_coords(), 5u);
  EXPECT_EQ(m.envelope(), Envelope(0, 0, 7, 5));
}

TEST(Geometry, MultiLineStringRejectsEmpty) {
  EXPECT_THROW(Geometry::multi_line_string({}), InvalidArgument);
}

TEST(Geometry, MultiPolygon) {
  Polygon a{unit_square_ring(), {}};
  Polygon b{{{3, 3}, {4, 3}, {4, 4}, {3, 4}, {3, 3}}, {}};
  const Geometry m = Geometry::multi_polygon({a, b});
  EXPECT_EQ(m.type(), GeomType::kMultiPolygon);
  EXPECT_EQ(m.num_coords(), 10u);
  EXPECT_EQ(m.envelope(), Envelope(0, 0, 4, 4));
  EXPECT_TRUE(m.is_areal());
}

TEST(Geometry, MultiPolygonRejectsEmpty) {
  EXPECT_THROW(Geometry::multi_polygon({}), InvalidArgument);
}

TEST(Geometry, EqualityIsStructural) {
  const Geometry a = Geometry::line_string({{0, 0}, {1, 1}});
  const Geometry b = Geometry::line_string({{0, 0}, {1, 1}});
  const Geometry c = Geometry::line_string({{0, 0}, {1, 2}});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == Geometry::point(0, 0));
}

TEST(Geometry, WrongAccessorThrows) {
  const Geometry p = Geometry::point(0, 0);
  EXPECT_THROW(p.as_polygon(), InvalidArgument);
  EXPECT_THROW(p.as_line_string(), InvalidArgument);
  const Geometry poly = Geometry::polygon(unit_square_ring());
  EXPECT_THROW(poly.as_point(), InvalidArgument);
}

TEST(Geometry, SizeBytesGrowsWithCoords) {
  const Geometry small = Geometry::line_string({{0, 0}, {1, 1}});
  std::vector<Coord> many;
  for (int i = 0; i < 100; ++i) many.push_back({static_cast<double>(i), 0.0});
  const Geometry big = Geometry::line_string(std::move(many));
  EXPECT_GT(big.size_bytes(), small.size_bytes());
  EXPECT_EQ(big.size_bytes() - small.size_bytes(), 98 * sizeof(Coord));
}

TEST(Geometry, RingSignedAreaOrientation) {
  EXPECT_GT(ring_signed_area(unit_square_ring()), 0.0);  // CCW
  Ring cw = unit_square_ring();
  std::reverse(cw.begin(), cw.end());
  EXPECT_LT(ring_signed_area(cw), 0.0);
  EXPECT_DOUBLE_EQ(ring_signed_area(unit_square_ring()), 1.0);
}

TEST(Geometry, PolygonEnvelopeIgnoresHoles) {
  // The shell bounds the holes; the envelope must equal the shell's bounds.
  Ring hole = {{0.4, 0.4}, {0.6, 0.4}, {0.6, 0.6}, {0.4, 0.6}, {0.4, 0.4}};
  const Geometry poly = Geometry::polygon(unit_square_ring(), {hole});
  EXPECT_EQ(poly.envelope(), Envelope(0, 0, 1, 1));
}

TEST(Feature, DefaultAndAssignment) {
  Feature f;
  EXPECT_EQ(f.id, 0u);
  f.id = 42;
  f.geometry = Geometry::point(1, 2);
  EXPECT_EQ(f.geometry.as_point().x, 1.0);
}

}  // namespace
}  // namespace sjc::geom
