// Zero-copy data plane tests: the grid cell directory must agree with the
// STR tree, the duplicated-records counter must report the exact
// multi-assignment overhead on a pinned grid, repeated runs must be
// bit-identical with the thread pool active, and the zero-copy plane must
// charge exactly the same modeled quantities as the seed copying plane.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <set>

#include "core/experiments.hpp"
#include "core/spatial_join.hpp"
#include "index/str_tree.hpp"
#include "partition/partitioner.hpp"
#include "systems/hadoopgis/hadoop_gis.hpp"
#include "systems/spatialhadoop/spatial_hadoop.hpp"
#include "systems/spatialspark/spatial_spark.hpp"
#include "util/stopwatch.hpp"
#include "workload/generators.hpp"

namespace sjc {
namespace {

// Virtual time (measured CPU pinned to zero, so every modeled second is a
// pure cost-model output) is scoped with the library's sjc::VirtualTimeGuard
// (util/stopwatch.hpp), which restores the *previous* flag value — safe to
// nest and exception-safe, unlike the set/set pairs it replaced.

bool double_identical(double a, double b) {
  return (std::isnan(a) && std::isnan(b)) || a == b;
}

/// Requires two reports to agree on every modeled quantity, bit for bit.
void expect_reports_identical(const core::RunReport& a, const core::RunReport& b,
                              const std::string& tag) {
  EXPECT_EQ(a.success, b.success) << tag;
  EXPECT_EQ(a.failure_reason, b.failure_reason) << tag;
  EXPECT_EQ(a.result_count, b.result_count) << tag;
  EXPECT_EQ(a.result_hash, b.result_hash) << tag;
  EXPECT_TRUE(double_identical(a.index_a_seconds, b.index_a_seconds)) << tag;
  EXPECT_TRUE(double_identical(a.index_b_seconds, b.index_b_seconds)) << tag;
  EXPECT_TRUE(double_identical(a.join_seconds, b.join_seconds)) << tag;
  EXPECT_TRUE(double_identical(a.total_seconds, b.total_seconds)) << tag;
  EXPECT_EQ(a.peak_memory_bytes, b.peak_memory_bytes) << tag;
  EXPECT_EQ(a.attempts_used, b.attempts_used) << tag;
  ASSERT_EQ(a.metrics.phases().size(), b.metrics.phases().size()) << tag;
  for (std::size_t i = 0; i < a.metrics.phases().size(); ++i) {
    const auto& pa = a.metrics.phases()[i];
    const auto& pb = b.metrics.phases()[i];
    EXPECT_EQ(pa.name, pb.name) << tag;
    EXPECT_TRUE(double_identical(pa.sim_seconds, pb.sim_seconds))
        << tag << " phase " << pa.name;
    EXPECT_EQ(pa.bytes_read, pb.bytes_read) << tag << " phase " << pa.name;
    EXPECT_EQ(pa.bytes_written, pb.bytes_written) << tag << " phase " << pa.name;
    EXPECT_EQ(pa.bytes_shuffled, pb.bytes_shuffled) << tag << " phase " << pa.name;
    EXPECT_EQ(pa.task_count, pb.task_count) << tag << " phase " << pa.name;
    EXPECT_EQ(pa.max_task_pipe_bytes, pb.max_task_pipe_bytes)
        << tag << " phase " << pa.name;
    EXPECT_EQ(pa.task_attempts, pb.task_attempts) << tag << " phase " << pa.name;
  }
  EXPECT_EQ(a.counters.snapshot(), b.counters.snapshot()) << tag;
}

// ---------------------------------------------------------------------------
// Grid cell directory vs STR tree
// ---------------------------------------------------------------------------

TEST(DataPlane, GridDirectoryAgreesWithTree) {
  // assign() and assign_into() both answer from the uniform-grid cell
  // directory (one semantics, one implementation), so the reference here is
  // an *independent* STR tree over the partition cells built by the test,
  // with the nearest-cell fallback re-derived by brute force. The id sets
  // must agree for every partitioner geometry, and min_assigned() must equal
  // the reference minimum — including on fallback queries.
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> pos(0.0, 1000.0);
  std::uniform_real_distribution<double> len(0.0, 30.0);
  const geom::Envelope extent(0.0, 0.0, 1000.0, 1000.0);
  std::vector<geom::Envelope> sample;
  for (int i = 0; i < 500; ++i) {
    const double x = pos(rng);
    const double y = pos(rng);
    sample.emplace_back(x, y, x + len(rng), y + len(rng));
  }
  for (const auto kind :
       {partition::PartitionerKind::kFixedGrid, partition::PartitionerKind::kStr,
        partition::PartitionerKind::kBsp, partition::PartitionerKind::kQuadtree}) {
    const auto scheme = partition::make_partitions(kind, sample, extent, 37);
    // Independent reference: STR tree over the scheme's cells + brute-force
    // nearest-cell fallback (same tie-break as the scheme: first minimum).
    std::vector<index::IndexEntry> entries;
    for (std::uint32_t i = 0; i < scheme.cell_count(); ++i) {
      entries.push_back({scheme.cells()[i], i});
    }
    const index::StrTree reference_tree(std::move(entries));
    const auto reference_assign = [&](const geom::Envelope& q) {
      std::vector<std::uint32_t> ids = reference_tree.query_ids(q);
      if (!ids.empty()) return ids;
      std::uint32_t best = 0;
      double best_dist = std::numeric_limits<double>::infinity();
      for (std::uint32_t i = 0; i < scheme.cell_count(); ++i) {
        const double d = scheme.cells()[i].distance(q);
        if (d < best_dist) {
          best_dist = d;
          best = i;
        }
      }
      ids.push_back(best);
      return ids;
    };
    std::vector<geom::Envelope> queries = sample;
    // Degenerate (point) envelopes, the reference-point dedup shape.
    for (int i = 0; i < 200; ++i) {
      const double x = pos(rng);
      const double y = pos(rng);
      queries.emplace_back(x, y, x, y);
    }
    // Envelopes straddling or outside the extent (nearest-cell fallback).
    queries.emplace_back(-50.0, -50.0, -10.0, -10.0);
    queries.emplace_back(990.0, 990.0, 1100.0, 1100.0);
    queries.emplace_back(-10.0, 400.0, 1100.0, 420.0);
    std::vector<std::uint32_t> got;
    for (const auto& q : queries) {
      auto expected = reference_assign(q);
      EXPECT_EQ(scheme.assign(q), [&] {
        std::vector<std::uint32_t> v;
        scheme.assign_into(q, v);
        return v;
      }()) << partition::partitioner_kind_name(kind);
      scheme.assign_into(q, got);
      const std::uint32_t expected_min =
          *std::min_element(expected.begin(), expected.end());
      std::sort(expected.begin(), expected.end());
      std::sort(got.begin(), got.end());
      ASSERT_EQ(got, expected) << partition::partitioner_kind_name(kind);
      EXPECT_EQ(scheme.min_assigned(q), expected_min)
          << partition::partitioner_kind_name(kind);
    }
  }
}

// ---------------------------------------------------------------------------
// Duplicated-records counter on a pinned grid
// ---------------------------------------------------------------------------

geom::Feature box(std::uint64_t id, double x0, double y0, double x1, double y1) {
  return {id, geom::Geometry::polygon({{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}, {x0, y0}})};
}

TEST(DataPlane, DuplicatedRecordsCounterOnPinnedGrid) {
  // target_partitions=4 + kFixedGrid pins a 2x2 grid over the extent; both
  // datasets carry corner anchors so every system (per-dataset extents for
  // the Hadoop family, joint extent for Spark) derives the same [0,100]^2
  // grid with the seam at 50. The expected count is then by construction:
  // one extra assignment per seam crossing, three for the center box.
  std::vector<geom::Feature> a_features;
  a_features.push_back(box(0, 0, 0, 1, 1));         // anchor, 1 cell
  a_features.push_back(box(1, 99, 99, 100, 100));   // anchor, 1 cell
  a_features.push_back(box(2, 10, 10, 20, 20));     // 1 cell
  a_features.push_back(box(3, 40, 10, 60, 20));     // crosses x=50: +1
  a_features.push_back(box(4, 10, 40, 20, 60));     // crosses y=50: +1
  a_features.push_back(box(5, 45, 45, 55, 55));     // crosses both: +3
  std::vector<geom::Feature> b_features;
  b_features.push_back(box(0, 0, 0, 1, 1));         // anchor, 1 cell
  b_features.push_back(box(1, 99, 99, 100, 100));   // anchor, 1 cell
  b_features.push_back(box(2, 60, 60, 70, 70));     // 1 cell
  b_features.push_back(box(3, 40, 60, 60, 70));     // crosses x=50: +1
  b_features.push_back(box(4, 45, 45, 55, 55));     // crosses both: +3
  const std::uint64_t expected_dups = (1 + 1 + 3) + (1 + 3);

  const workload::Dataset left("dup-a", std::move(a_features), 0);
  const workload::Dataset right("dup-b", std::move(b_features), 0);
  core::JoinQueryConfig query;
  query.predicate = core::JoinPredicate::kIntersects;
  query.partitioner = partition::PartitionerKind::kFixedGrid;
  query.target_partitions = 4;
  core::ExecutionConfig exec;
  exec.cluster = cluster::ClusterSpec::workstation();

  // The counter pins the *raw* multi-assignment overhead, so the map-side
  // shuffle filter is forced off; the companion run below checks the
  // filter-on counter only shrinks and the shuffle invariant holds.
  const auto check = [&](const core::RunReport& report, const char* tag) {
    ASSERT_TRUE(report.success) << tag << ": " << report.failure_reason;
    EXPECT_EQ(report.counters.get("partition.duplicated_records"), expected_dups)
        << tag;
  };
  const auto check_filtered = [&](const core::RunReport& report, const char* tag) {
    ASSERT_TRUE(report.success) << tag << ": " << report.failure_reason;
    EXPECT_LE(report.counters.get("partition.duplicated_records"), expected_dups)
        << tag;
    EXPECT_EQ(report.counters.get("shuffle.assigned_records"),
              report.counters.get("shuffle.records") +
                  report.counters.get("shuffle.filtered_records"))
        << tag;
  };
  {
    systems::HadoopGisConfig cfg;
    cfg.policy.shuffle_filter = false;
    check(systems::run_hadoop_gis(left, right, query, exec, cfg), "hadoopgis");
    cfg.policy.shuffle_filter = true;
    check_filtered(systems::run_hadoop_gis(left, right, query, exec, cfg),
                   "hadoopgis-filtered");
  }
  {
    systems::SpatialHadoopConfig cfg;
    cfg.policy.shuffle_filter = false;
    check(systems::run_spatial_hadoop(left, right, query, exec, cfg),
          "spatialhadoop");
    cfg.policy.shuffle_filter = true;
    check_filtered(systems::run_spatial_hadoop(left, right, query, exec, cfg),
                   "spatialhadoop-filtered");
  }
  {
    systems::SpatialSparkConfig cfg;
    cfg.policy.shuffle_filter = false;
    check(systems::run_spatial_spark(left, right, query, exec, cfg),
          "spatialspark");
    cfg.policy.shuffle_filter = true;
    check_filtered(systems::run_spatial_spark(left, right, query, exec, cfg),
                   "spatialspark-filtered");
  }
}

// ---------------------------------------------------------------------------
// Determinism and plane invariance under virtual time
// ---------------------------------------------------------------------------

struct PlaneBench {
  workload::Dataset left;
  workload::Dataset right;
  core::JoinQueryConfig query;
  core::ExecutionConfig exec;

  static PlaneBench make() {
    workload::WorkloadConfig wc;
    wc.scale = 2e-4;
    // The taxi1m x nycb row: large enough to exercise every stage, small
    // enough that HadoopGIS stays inside its (intentional) pipe gate.
    PlaneBench b{workload::generate(workload::DatasetId::kTaxi1m, wc),
                 workload::generate(workload::DatasetId::kNycb, wc),
                 {},
                 {}};
    b.query.predicate = core::JoinPredicate::kWithin;
    // Workstation keeps HadoopGIS inside its (intentional) pipe gate at
    // this scale while still running multi-slot through the thread pool.
    b.exec.cluster = cluster::ClusterSpec::workstation();
    b.exec.data_scale = 1.0 / wc.scale;
    return b;
  }
};

TEST(DataPlane, RepeatedRunsBitIdenticalUnderVirtualTime) {
  // With measured CPU pinned to zero, two runs of the same Table-2 config —
  // thread pool active, arena shuffle buckets, prepared-geometry cache —
  // must produce byte-identical reports: no scheduling-dependent modeled
  // quantity may exist in the zero-copy plane.
  const VirtualTimeGuard vt;
  const PlaneBench b = PlaneBench::make();
  for (const auto kind :
       {core::SystemKind::kHadoopGisSim, core::SystemKind::kSpatialHadoopSim,
        core::SystemKind::kSpatialSparkSim}) {
    const auto first = core::run_spatial_join(kind, b.left, b.right, b.query, b.exec);
    const auto second = core::run_spatial_join(kind, b.left, b.right, b.query, b.exec);
    ASSERT_TRUE(first.success) << first.failure_reason;
    expect_reports_identical(first, second,
                             std::string("repeat/") + core::system_kind_name(kind));
  }
}

TEST(DataPlane, VirtualTimeStateDoesNotLeakBetweenRuns) {
  // Regression for the global virtual-time flag leaking across consecutive
  // runs: a guard scope (even a nested one) must restore the prior state,
  // and a run after the scope must measure real CPU again while charging
  // the same modeled quantities.
  ASSERT_FALSE(virtual_time_enabled());
  const PlaneBench b = PlaneBench::make();
  core::RunReport virt_a, virt_b;
  {
    const VirtualTimeGuard vt;
    ASSERT_TRUE(virtual_time_enabled());
    {
      // Nested guards restore the previous value, not unconditionally off —
      // the bug class the old set_virtual_time(false) epilogues had.
      const VirtualTimeGuard nested(false);
      ASSERT_FALSE(virtual_time_enabled());
    }
    ASSERT_TRUE(virtual_time_enabled());
    // Two back-to-back joins inside one virtual-time scope: bit-identical.
    virt_a = core::run_spatial_join(core::SystemKind::kSpatialHadoopSim, b.left,
                                    b.right, b.query, b.exec);
    virt_b = core::run_spatial_join(core::SystemKind::kSpatialHadoopSim, b.left,
                                    b.right, b.query, b.exec);
    ASSERT_TRUE(virt_a.success) << virt_a.failure_reason;
    expect_reports_identical(virt_a, virt_b, "virtual-time back-to-back");
  }
  ASSERT_FALSE(virtual_time_enabled());

  // Post-scope run: the stopwatch measures again (CPU seconds flow into the
  // modeled times, which virtual time pinned), while every
  // schedule-independent quantity still matches the virtual-time runs.
  const auto real = core::run_spatial_join(core::SystemKind::kSpatialHadoopSim, b.left,
                                           b.right, b.query, b.exec);
  ASSERT_TRUE(real.success) << real.failure_reason;
  EXPECT_EQ(real.result_count, virt_a.result_count);
  EXPECT_EQ(real.result_hash, virt_a.result_hash);
  EXPECT_EQ(real.counters.snapshot(), virt_a.counters.snapshot());
  EXPECT_GE(real.total_seconds, virt_a.total_seconds);
}

// ---------------------------------------------------------------------------
// Trace accounting neutrality
// ---------------------------------------------------------------------------

/// The edges x linearwater row (kIntersects), the second Table-2 experiment
/// shape, at a scale small enough for the test suite.
PlaneBench make_edges_bench() {
  workload::WorkloadConfig wc;
  wc.scale = 2e-5;
  PlaneBench b{workload::generate(workload::DatasetId::kEdges, wc),
               workload::generate(workload::DatasetId::kLinearwater, wc),
               {},
               {}};
  b.query.predicate = core::JoinPredicate::kIntersects;
  b.exec.cluster = cluster::ClusterSpec::workstation();
  b.exec.data_scale = 1.0 / wc.scale;
  return b;
}

/// Requires a traced run's timeline to be structurally sound for its run.
void expect_timeline_sane(const core::RunReport& report, const std::string& tag) {
  const trace::TaskTimeline& t = report.trace;
  EXPECT_GT(t.spans.size(), 0u) << tag;
  EXPECT_EQ(t.total_slots(), cluster::ClusterSpec::workstation().total_slots()) << tag;
  double max_end = 0.0;
  std::set<std::string> phases_seen;
  for (const auto& s : t.spans) {
    EXPECT_LT(s.slot, t.total_slots()) << tag;
    EXPECT_GE(s.sim_end, s.sim_start) << tag;
    max_end = std::max(max_end, s.sim_end);
    phases_seen.insert(s.phase);
  }
  // Spans never run past the sequential clock, and every recorded phase
  // with tasks appears on the timeline.
  EXPECT_LE(max_end, report.metrics.total_seconds() * (1.0 + 1e-12)) << tag;
  for (const auto& p : report.metrics.phases()) {
    if (p.task_count > 0) {
      EXPECT_TRUE(phases_seen.count(p.name) > 0) << tag << " phase " << p.name;
    }
  }
}

TEST(DataPlane, TracedRunReportsBitIdenticalToUntraced) {
  // The tentpole guarantee: flipping ExecutionConfig::trace changes what
  // the run *records*, never what it *charges* — on both Table-2 experiment
  // shapes, success and failure paths alike (HadoopGIS may die in its pipe
  // gate on the edges row; the reports must still match bit for bit).
  const VirtualTimeGuard vt;
  const PlaneBench benches[] = {PlaneBench::make(), make_edges_bench()};
  const char* bench_names[] = {"taxi-nycb", "edges-linearwater"};
  for (std::size_t bi = 0; bi < 2; ++bi) {
    const PlaneBench& b = benches[bi];
    for (const auto kind :
         {core::SystemKind::kHadoopGisSim, core::SystemKind::kSpatialHadoopSim,
          core::SystemKind::kSpatialSparkSim}) {
      core::ExecutionConfig traced_exec = b.exec;
      traced_exec.trace = true;
      const auto untraced =
          core::run_spatial_join(kind, b.left, b.right, b.query, b.exec);
      const auto traced =
          core::run_spatial_join(kind, b.left, b.right, b.query, traced_exec);
      const std::string tag = std::string(bench_names[bi]) + "/traced-vs-untraced/" +
                              core::system_kind_name(kind);
      expect_reports_identical(untraced, traced, tag);
      EXPECT_TRUE(untraced.trace.empty()) << tag;
      expect_timeline_sane(traced, tag);
    }
  }
}

TEST(DataPlane, ZeroCopyPlaneChargesIdenticalModeledQuantities) {
  // The accounting-invariance contract: flipping zero_copy_plane changes
  // how the harness holds records, never what the simulator charges.
  const VirtualTimeGuard vt;
  const PlaneBench b = PlaneBench::make();
  {
    systems::SpatialHadoopConfig seed_cfg;
    seed_cfg.zero_copy_plane = false;
    seed_cfg.policy.shuffle_filter = false;  // isolate the plane; filter has its own tests
    systems::SpatialHadoopConfig zc_cfg;
    zc_cfg.zero_copy_plane = true;
    zc_cfg.policy.shuffle_filter = false;
    const auto seed =
        systems::run_spatial_hadoop(b.left, b.right, b.query, b.exec, seed_cfg);
    const auto zc = systems::run_spatial_hadoop(b.left, b.right, b.query, b.exec, zc_cfg);
    ASSERT_TRUE(seed.success) << seed.failure_reason;
    expect_reports_identical(seed, zc, "spatialhadoop seed-vs-zero-copy");
  }
  {
    systems::SpatialSparkConfig seed_cfg;
    seed_cfg.zero_copy_plane = false;
    seed_cfg.policy.shuffle_filter = false;  // isolate the plane; filter has its own tests
    systems::SpatialSparkConfig zc_cfg;
    zc_cfg.zero_copy_plane = true;
    zc_cfg.policy.shuffle_filter = false;
    const auto seed =
        systems::run_spatial_spark(b.left, b.right, b.query, b.exec, seed_cfg);
    const auto zc = systems::run_spatial_spark(b.left, b.right, b.query, b.exec, zc_cfg);
    ASSERT_TRUE(seed.success) << seed.failure_reason;
    expect_reports_identical(seed, zc, "spatialspark seed-vs-zero-copy");
  }
}

}  // namespace
}  // namespace sjc
