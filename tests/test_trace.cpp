// sjc::trace tests: collector determinism under concurrent recording,
// scheduler span emission consistency (spans are an exact decomposition of
// the schedule), Chrome trace-event export validity, and the skew summary's
// percentile arithmetic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/fault_injector.hpp"
#include "cluster/scheduler.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/trace.hpp"
#include "util/thread_pool.hpp"

namespace sjc {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON syntax validator (recursive descent), enough to prove the
// exported trace is well-formed without pulling in a JSON dependency.
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// TraceCollector
// ---------------------------------------------------------------------------

trace::TaskSpan make_span(const std::string& phase, std::uint64_t task,
                          double start, double end, std::uint32_t slot = 0) {
  trace::TaskSpan s;
  s.phase = phase;
  s.task = task;
  s.slot = slot;
  s.sim_start = start;
  s.sim_end = end;
  return s;
}

TEST(TraceCollector, ConcurrentRecordingMergesDeterministically) {
  // Spans recorded from many pool threads in arbitrary order must merge
  // into exactly the same sequence every time: sorted by span content, with
  // nothing lost.
  const auto run_once = [] {
    trace::TraceCollector collector(2, 4);
    ThreadPool::shared().parallel_for(64, [&](std::size_t i) {
      for (int k = 0; k < 16; ++k) {
        collector.record(make_span("phase" + std::to_string(i % 5),
                                   i * 100 + static_cast<std::uint64_t>(k),
                                   static_cast<double>(i), static_cast<double>(i) + 1,
                                   static_cast<std::uint32_t>(i % 8)));
      }
    });
    return collector.merged();
  };
  const trace::TaskTimeline a = run_once();
  const trace::TaskTimeline b = run_once();
  ASSERT_EQ(a.spans.size(), 64u * 16u);
  ASSERT_EQ(a.spans.size(), b.spans.size());
  EXPECT_TRUE(std::is_sorted(a.spans.begin(), a.spans.end(),
                             [](const trace::TaskSpan& x, const trace::TaskSpan& y) {
                               if (x.sim_start != y.sim_start)
                                 return x.sim_start < y.sim_start;
                               return x.phase < y.phase ||
                                      (x.phase == y.phase && x.task <= y.task);
                             }));
  for (std::size_t i = 0; i < a.spans.size(); ++i) {
    EXPECT_EQ(a.spans[i].phase, b.spans[i].phase);
    EXPECT_EQ(a.spans[i].task, b.spans[i].task);
    EXPECT_EQ(a.spans[i].slot, b.spans[i].slot);
    EXPECT_EQ(a.spans[i].sim_start, b.spans[i].sim_start);
  }
}

TEST(TraceCollector, FreshCollectorDoesNotInheritThreadCaches) {
  // Two collectors used back to back from the same threads (including pool
  // workers) must keep their spans separate, even though a new collector
  // may be allocated where a destroyed one lived.
  for (int round = 0; round < 8; ++round) {
    trace::TraceCollector collector(1, 4);
    ThreadPool::shared().parallel_for(8, [&](std::size_t i) {
      collector.record(make_span("r", i, 0.0, 1.0));
    });
    EXPECT_EQ(collector.merged().spans.size(), 8u) << "round " << round;
  }
}

// ---------------------------------------------------------------------------
// Scheduler span emission
// ---------------------------------------------------------------------------

TEST(TraceSchedule, CleanScheduleSpansDecomposeExactly) {
  const std::vector<double> durations{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  std::vector<cluster::ScheduledAttempt> attempts;
  const double makespan = cluster::list_schedule_makespan(durations, 3, &attempts);
  ASSERT_EQ(attempts.size(), durations.size());
  double max_end = 0.0;
  std::vector<std::vector<std::pair<double, double>>> per_slot(3);
  for (const auto& a : attempts) {
    EXPECT_LT(a.slot, 3u);
    EXPECT_DOUBLE_EQ(a.end - a.start, durations[a.task]);
    EXPECT_EQ(a.outcome, trace::SpanOutcome::kOk);
    max_end = std::max(max_end, a.end);
    per_slot[a.slot].push_back({a.start, a.end});
  }
  EXPECT_DOUBLE_EQ(max_end, makespan);
  // No two attempts overlap on one slot.
  for (auto& intervals : per_slot) {
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_GE(intervals[i].first, intervals[i - 1].second);
    }
  }
}

TEST(TraceSchedule, FaultyScheduleEmitsEveryAttempt) {
  cluster::FaultPlan plan;
  plan.seed = 99;
  plan.task_crash_probability = 0.3;
  plan.max_attempts = 4;
  plan.retry_backoff_s = 1.0;
  const cluster::FaultInjector faults(plan);
  const std::vector<double> durations(32, 2.0);
  std::vector<cluster::ScheduledAttempt> attempts;
  const auto outcome =
      cluster::list_schedule_makespan(durations, 8, faults, 7, nullptr, &attempts);
  ASSERT_TRUE(outcome.success);
  // One emitted span per launched attempt, exactly.
  EXPECT_EQ(attempts.size(), outcome.attempts);
  // Emission is a pure observation: rerunning without the sink gives the
  // same outcome arithmetic.
  const auto untraced = cluster::list_schedule_makespan(durations, 8, faults, 7);
  EXPECT_DOUBLE_EQ(untraced.makespan, outcome.makespan);
  EXPECT_EQ(untraced.attempts, outcome.attempts);
  EXPECT_DOUBLE_EQ(untraced.wasted_seconds, outcome.wasted_seconds);
  // Every task's final attempt succeeds; earlier ones are failures.
  double max_end = 0.0;
  std::size_t failed = 0;
  for (const auto& a : attempts) {
    max_end = std::max(max_end, a.end);
    if (a.outcome == trace::SpanOutcome::kFailed) ++failed;
  }
  EXPECT_DOUBLE_EQ(max_end, outcome.makespan);
  EXPECT_EQ(failed, outcome.attempts - durations.size());
}

TEST(TraceSchedule, SpeculationEmitsWinnerAndLoser) {
  cluster::FaultPlan plan;
  plan.seed = 5;
  plan.straggler_probability = 1.0;
  plan.straggler_slowdown = 4.0;
  plan.speculative_execution = true;
  plan.speculation_threshold = 1.5;
  const cluster::FaultInjector faults(plan);
  const std::vector<double> durations(4, 1.0);
  std::vector<cluster::ScheduledAttempt> attempts;
  const auto outcome =
      cluster::list_schedule_makespan(durations, 8, faults, 3, nullptr, &attempts);
  ASSERT_TRUE(outcome.success);
  ASSERT_EQ(outcome.speculative_clones, 4u);
  ASSERT_EQ(attempts.size(), 8u);  // 4 primaries + 4 clones
  for (std::size_t task = 0; task < 4; ++task) {
    const auto primary = std::find_if(
        attempts.begin(), attempts.end(), [task](const cluster::ScheduledAttempt& a) {
          return a.task == task && !a.speculative;
        });
    const auto clone = std::find_if(
        attempts.begin(), attempts.end(), [task](const cluster::ScheduledAttempt& a) {
          return a.task == task && a.speculative;
        });
    ASSERT_NE(primary, attempts.end());
    ASSERT_NE(clone, attempts.end());
    EXPECT_NE(primary->slot, clone->slot);
    // Exactly one of the pair wins; the clone here (full speed beats the
    // 4x-slowed primary), and the loser's span is truncated at the win.
    EXPECT_EQ(clone->outcome, trace::SpanOutcome::kOk);
    EXPECT_EQ(primary->outcome, trace::SpanOutcome::kSpeculativeLoser);
    EXPECT_DOUBLE_EQ(primary->end, clone->end);
  }
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

TEST(ChromeTrace, ExportIsValidJsonWithOneTrackPerSlot) {
  trace::TaskTimeline timeline;
  timeline.node_count = 2;
  timeline.slots_per_node = 3;
  timeline.spans.push_back(make_span("A/map \"quoted\"\\", 0, 0.0, 1.5, 0));
  timeline.spans.push_back(make_span("A/map", 1, 0.5, 2.0, 4));
  timeline.spans.back().outcome = trace::SpanOutcome::kFailed;

  std::ostringstream out;
  trace::write_chrome_trace(out, timeline);
  const std::string json = out.str();

  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);

  // One thread_name metadata event per (node, slot) — 6 tracks — plus one
  // process_name per node.
  std::size_t thread_names = 0;
  std::size_t process_names = 0;
  std::size_t complete_events = 0;
  for (std::size_t pos = 0; (pos = json.find("\"ph\":\"", pos)) != std::string::npos;
       pos += 6) {
    const char kind = json[pos + 6];
    if (kind != 'M') {
      if (kind == 'X') ++complete_events;
      continue;
    }
    const std::size_t name_pos = json.find("\"name\":\"", pos);
    if (json.compare(name_pos + 8, 11, "thread_name") == 0) ++thread_names;
    if (json.compare(name_pos + 8, 12, "process_name") == 0) ++process_names;
  }
  EXPECT_EQ(thread_names, 6u);
  EXPECT_EQ(process_names, 2u);
  EXPECT_EQ(complete_events, timeline.spans.size());

  // Slot 4 maps to node 1 (pid 2), local slot 1 (tid 2).
  EXPECT_NE(json.find("\"pid\":2,\"tid\":2,\"ts\":500000"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// Skew summary
// ---------------------------------------------------------------------------

TEST(SkewSummary, PercentilesAndStragglers) {
  trace::TaskTimeline timeline;
  timeline.node_count = 1;
  timeline.slots_per_node = 4;
  // 19 one-second tasks plus one 10-second straggler.
  for (int i = 0; i < 19; ++i) {
    timeline.spans.push_back(make_span("map", static_cast<std::uint64_t>(i),
                                       0.0, 1.0));
  }
  timeline.spans.push_back(make_span("map", 19, 0.0, 10.0));
  timeline.spans.push_back(make_span("reduce", 0, 1.0, 3.0));
  timeline.spans.back().outcome = trace::SpanOutcome::kSpeculativeLoser;

  const auto rows = trace::skew_summary(timeline);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].phase, "map");  // first-appearance order
  EXPECT_EQ(rows[0].attempts, 20u);
  EXPECT_DOUBLE_EQ(rows[0].min_s, 1.0);
  EXPECT_DOUBLE_EQ(rows[0].p50_s, 1.0);
  EXPECT_DOUBLE_EQ(rows[0].p95_s, 1.0);   // nearest-rank: ceil(0.95*20)=19th of 20
  EXPECT_DOUBLE_EQ(rows[0].max_s, 10.0);
  EXPECT_EQ(rows[0].stragglers, 1u);      // only the 10s task exceeds 1.5*p50
  EXPECT_EQ(rows[0].failed, 0u);
  EXPECT_EQ(rows[1].phase, "reduce");
  EXPECT_EQ(rows[1].attempts, 1u);
  EXPECT_EQ(rows[1].spec_losers, 1u);
  EXPECT_DOUBLE_EQ(rows[1].p50_s, 2.0);
  EXPECT_EQ(rows[1].stragglers, 0u);

  // The formatted table carries every phase row and the max/p50 hotspot
  // ratio column (10.0 / 1.0 for the map phase).
  const std::string table = trace::format_skew_table(timeline);
  EXPECT_NE(table.find("map"), std::string::npos);
  EXPECT_NE(table.find("reduce"), std::string::npos);
  EXPECT_NE(table.find("ratio"), std::string::npos);
  EXPECT_NE(table.find("10.00"), std::string::npos) << table;
}

TEST(SkewSummary, RepartitionAndPlanFooters) {
  trace::TaskTimeline timeline;
  timeline.node_count = 1;
  timeline.slots_per_node = 1;
  timeline.spans.push_back(make_span("map", 0, 0.0, 1.0));

  // No adaptive counters -> no footers (the gates are the counters that are
  // >= 1 whenever the feature ran: repartition.rounds and plan.chosen).
  std::map<std::string, std::uint64_t> counters;
  std::string table = trace::format_skew_table(timeline, counters);
  EXPECT_EQ(table.find("repartition:"), std::string::npos);
  EXPECT_EQ(table.find("plan:"), std::string::npos);

  counters["repartition.rounds"] = 2;
  counters["repartition.splits"] = 3;
  counters["repartition.cells"] = 25;
  counters["repartition.migrated_records"] = 1200;
  counters["repartition.migrated_bytes"] = 56000;
  counters["plan.chosen"] = 2;
  counters["plan.predicted_cost"] = 40;
  counters["plan.predicted_broadcast"] = 40;
  counters["plan.predicted_partitioned"] = 90;
  counters["plan.actual_cost"] = 45;
  table = trace::format_skew_table(timeline, counters);
  EXPECT_NE(table.find("repartition: 2 rounds | 3 splits -> 25 cells"),
            std::string::npos)
      << table;
  EXPECT_NE(table.find("migrated 1200 records / 56000 bytes"), std::string::npos);
  EXPECT_NE(table.find("plan: broadcast | predicted 40 ms (broadcast 40 / "
                       "partitioned 90) | actual 45 ms"),
            std::string::npos)
      << table;
  EXPECT_EQ(table.find("fallback"), std::string::npos);

  counters["plan.chosen"] = 1;
  counters["plan.fallback"] = 1;
  table = trace::format_skew_table(timeline, counters);
  EXPECT_NE(table.find("plan: partitioned"), std::string::npos) << table;
  EXPECT_NE(table.find("| fallback"), std::string::npos) << table;
}

}  // namespace
}  // namespace sjc
