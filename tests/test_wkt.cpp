// WKT reader/writer tests: canonical output, round trips (including
// property-based random geometries) and parse-error handling.
#include <gtest/gtest.h>

#include "geom/wkt.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace sjc::geom {
namespace {

TEST(Wkt, WritesPoint) {
  EXPECT_EQ(to_wkt(Geometry::point(1.5, -2.25)), "POINT (1.5 -2.25)");
}

TEST(Wkt, WritesLineString) {
  EXPECT_EQ(to_wkt(Geometry::line_string({{0, 0}, {1, 1}})), "LINESTRING (0 0, 1 1)");
}

TEST(Wkt, WritesPolygonWithHole) {
  const Geometry poly = Geometry::polygon(
      {{0, 0}, {4, 0}, {4, 4}, {0, 4}, {0, 0}},
      {{{1, 1}, {2, 1}, {2, 2}, {1, 2}, {1, 1}}});
  EXPECT_EQ(to_wkt(poly),
            "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 2 1, 2 2, 1 2, 1 1))");
}

TEST(Wkt, ParsesPoint) {
  const Geometry g = from_wkt("POINT (3 4)");
  EXPECT_EQ(g.type(), GeomType::kPoint);
  EXPECT_EQ(g.as_point().x, 3.0);
}

TEST(Wkt, ParsesWithIrregularWhitespace) {
  const Geometry g = from_wkt("  LINESTRING(0 0 ,  1 1,2   2)  ");
  EXPECT_EQ(g.num_coords(), 3u);
}

TEST(Wkt, ParsesScientificNotation) {
  const Geometry g = from_wkt("POINT (1.5e3 -2.5e-2)");
  EXPECT_EQ(g.as_point().x, 1500.0);
  EXPECT_EQ(g.as_point().y, -0.025);
}

TEST(Wkt, ParsesMultiPolygon) {
  const Geometry g = from_wkt(
      "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), ((5 5, 6 5, 6 6, 5 6, 5 5)))");
  EXPECT_EQ(g.type(), GeomType::kMultiPolygon);
  EXPECT_EQ(g.as_multi_polygon().parts.size(), 2u);
}

TEST(Wkt, ParsesMultiLineString) {
  const Geometry g = from_wkt("MULTILINESTRING ((0 0, 1 1), (2 2, 3 3, 4 4))");
  EXPECT_EQ(g.type(), GeomType::kMultiLineString);
  EXPECT_EQ(g.num_coords(), 5u);
}

TEST(Wkt, RejectsUnknownTag) {
  EXPECT_THROW(from_wkt("CIRCLE (0 0, 5)"), ParseError);
}

TEST(Wkt, RejectsUnbalancedParens) {
  EXPECT_THROW(from_wkt("POINT (1 2"), ParseError);
  EXPECT_THROW(from_wkt("LINESTRING (0 0, 1 1"), ParseError);
}

TEST(Wkt, RejectsTrailingGarbage) {
  EXPECT_THROW(from_wkt("POINT (1 2) extra"), ParseError);
}

TEST(Wkt, RejectsMissingNumbers) {
  EXPECT_THROW(from_wkt("POINT (1)"), ParseError);
  EXPECT_THROW(from_wkt("POINT (a b)"), ParseError);
}

TEST(Wkt, RejectsOpenRing) {
  // Geometry validation (InvalidArgument) fires through the parser; both
  // error types share the SjcError base.
  EXPECT_THROW(from_wkt("POLYGON ((0 0, 1 0, 1 1))"), SjcError);
}

TEST(Wkt, RejectsEmptyInput) {
  EXPECT_THROW(from_wkt(""), ParseError);
  EXPECT_THROW(from_wkt("   "), ParseError);
}

// ---------------------------------------------------------------------------
// Property: to_wkt / from_wkt round-trips random geometries exactly (our
// writer emits shortest-round-trip doubles).
// ---------------------------------------------------------------------------

class WktRoundTrip : public ::testing::TestWithParam<int> {};

Geometry random_geometry(Rng& rng, int kind) {
  const auto coord = [&rng] {
    return Coord{rng.uniform(-1000, 1000), rng.uniform(-1000, 1000)};
  };
  switch (kind) {
    case 0:
      return Geometry::point(rng.uniform(-1e6, 1e6), rng.uniform(-1e6, 1e6));
    case 1: {
      std::vector<Coord> pts;
      const auto n = 2 + rng.next_below(20);
      for (std::uint64_t i = 0; i < n; ++i) pts.push_back(coord());
      return Geometry::line_string(std::move(pts));
    }
    case 2: {
      // Random star-shaped polygon around a center: sorted angles keep the
      // ring simple.
      const Coord c = coord();
      const auto n = 3 + rng.next_below(12);
      std::vector<double> angles;
      for (std::uint64_t i = 0; i < n; ++i) angles.push_back(rng.uniform(0, 6.283));
      std::sort(angles.begin(), angles.end());
      Ring ring;
      for (const double a : angles) {
        const double r = rng.uniform(1.0, 50.0);
        ring.push_back({c.x + r * std::cos(a), c.y + r * std::sin(a)});
      }
      ring.push_back(ring.front());
      return Geometry::polygon(std::move(ring));
    }
    case 3: {
      std::vector<LineString> parts;
      const auto k = 1 + rng.next_below(4);
      for (std::uint64_t p = 0; p < k; ++p) {
        std::vector<Coord> pts{coord(), coord(), coord()};
        parts.push_back(LineString{std::move(pts)});
      }
      return Geometry::multi_line_string(std::move(parts));
    }
    default: {
      std::vector<Polygon> parts;
      const auto k = 1 + rng.next_below(3);
      for (std::uint64_t p = 0; p < k; ++p) {
        const Geometry g = random_geometry(rng, 2);
        parts.push_back(g.as_polygon());
      }
      return Geometry::multi_polygon(std::move(parts));
    }
  }
}

TEST_P(WktRoundTrip, RandomGeometriesRoundTripExactly) {
  Rng rng(1000 + GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const Geometry original = random_geometry(rng, GetParam());
    const Geometry parsed = from_wkt(to_wkt(original));
    EXPECT_TRUE(original == parsed) << to_wkt(original);
  }
}

const char* kind_name(int kind) {
  static const char* kNames[] = {"point", "linestring", "polygon", "multilinestring",
                                 "multipolygon"};
  return kNames[kind];
}

INSTANTIATE_TEST_SUITE_P(AllTypes, WktRoundTrip, ::testing::Range(0, 5),
                         [](const auto& info) { return kind_name(info.param); });

TEST(Wkt, TryFromWktNeverThrowsOnParseErrors) {
  std::string error;
  const auto good = try_from_wkt("POINT (1 2)", &error);
  ASSERT_TRUE(good.has_value());
  EXPECT_EQ(GeomType::kPoint, good->type());

  for (const char* bad : {"", "BLOB (1 2)", "POINT (1", "POINT (x y)",
                          "POLYGON (())"}) {
    error.clear();
    EXPECT_FALSE(try_from_wkt(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
    EXPECT_THROW(from_wkt(bad), ParseError) << bad;
  }
  // The error pointer is optional.
  EXPECT_FALSE(try_from_wkt("BLOB").has_value());
}

}  // namespace
}  // namespace sjc::geom
