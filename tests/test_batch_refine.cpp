// BatchRefiner property tests: the batched SoA refinement engine must
// answer bit-for-bit like predicates.hpp's naive reference (and like the
// per-pair BoundPredicate path) on randomized geometry — including polygons
// with holes, multipolygons, boundary-touch probes and degenerate slivers —
// while accounting every call to exactly one of
// {exact_tests, early_accepts, early_rejects}.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "geom/batch_refine.hpp"
#include "geom/engine.hpp"
#include "geom/predicates.hpp"
#include "geom/wkt.hpp"
#include "util/rng.hpp"

namespace sjc::geom {
namespace {

constexpr double kPi = 3.14159265358979323846;

// Same generator shape as test_prepared.cpp: 0 point, 1 random-walk line,
// 2 star polygon, 3 multiline, 4 multipolygon.
Geometry random_geometry(Rng& rng, int kind) {
  switch (kind) {
    case 0:
      return Geometry::point(rng.uniform(-60, 60), rng.uniform(-60, 60));
    case 1: {
      std::vector<Coord> pts;
      const auto n = 2 + rng.next_below(24);
      Coord cur{rng.uniform(-60, 60), rng.uniform(-60, 60)};
      pts.push_back(cur);
      for (std::uint64_t i = 1; i < n; ++i) {
        cur = {cur.x + rng.uniform(-12, 12), cur.y + rng.uniform(-12, 12)};
        pts.push_back(cur);
      }
      return Geometry::line_string(std::move(pts));
    }
    case 2: {
      const Coord c{rng.uniform(-40, 40), rng.uniform(-40, 40)};
      const auto n = 3 + rng.next_below(40);
      std::vector<double> angles;
      for (std::uint64_t i = 0; i < n; ++i) angles.push_back(rng.uniform(0, 6.2831));
      std::sort(angles.begin(), angles.end());
      Ring ring;
      for (const double a : angles) {
        const double r = rng.uniform(5.0, 35.0);
        ring.push_back({c.x + r * std::cos(a), c.y + r * std::sin(a)});
      }
      ring.push_back(ring.front());
      return Geometry::polygon(std::move(ring));
    }
    case 3: {
      std::vector<LineString> parts;
      const auto k = 1 + rng.next_below(3);
      for (std::uint64_t p = 0; p < k; ++p) {
        parts.push_back(LineString{{{rng.uniform(-60, 60), rng.uniform(-60, 60)},
                                    {rng.uniform(-60, 60), rng.uniform(-60, 60)},
                                    {rng.uniform(-60, 60), rng.uniform(-60, 60)}}});
      }
      return Geometry::multi_line_string(std::move(parts));
    }
    default: {
      std::vector<Polygon> parts;
      const auto k = 1 + rng.next_below(3);
      for (std::uint64_t p = 0; p < k; ++p) {
        parts.push_back(random_geometry(rng, 2).as_polygon());
      }
      return Geometry::multi_polygon(std::move(parts));
    }
  }
}

// Regular n-gon donut: hole radius < R*cos(pi/n), so the hole ring stays
// strictly inside the shell.
Geometry random_donut(Rng& rng) {
  const int n = 8 + static_cast<int>(rng.next_below(12));
  const double outer = rng.uniform(10, 20);
  const double inner = rng.uniform(1, 6);
  const Coord c{rng.uniform(-30, 30), rng.uniform(-30, 30)};
  Ring shell;
  Ring hole;
  for (int i = 0; i < n; ++i) {
    const double a = i * 2.0 * kPi / n;
    shell.push_back({c.x + outer * std::cos(a), c.y + outer * std::sin(a)});
    hole.push_back({c.x + inner * std::cos(a), c.y + inner * std::sin(a)});
  }
  shell.push_back(shell.front());
  hole.push_back(hole.front());
  return Geometry::polygon(std::move(shell), {std::move(hole)});
}

// Axis-aligned quad of height ~1e-8: the inner-rect heuristic finds nothing
// and every bucket/grid structure degenerates to a near-line.
Geometry random_sliver(Rng& rng) {
  const double x0 = rng.uniform(-50, 50);
  const double y0 = rng.uniform(-50, 50);
  const double len = rng.uniform(5, 30);
  const double h = 1e-8 * rng.uniform(0.5, 2.0);
  Ring ring{{x0, y0}, {x0 + len, y0}, {x0 + len, y0 + h}, {x0, y0 + h}, {x0, y0}};
  return Geometry::polygon(std::move(ring));
}

/// Shell vertices and edge midpoints of every areal part: exact
/// boundary-touch probe locations.
std::vector<Coord> boundary_probes(const Geometry& g) {
  std::vector<Coord> out;
  const auto add_ring = [&out](const Ring& ring) {
    for (std::size_t i = 0; i + 1 < ring.size(); ++i) {
      out.push_back(ring[i]);
      out.push_back({(ring[i].x + ring[i + 1].x) / 2, (ring[i].y + ring[i + 1].y) / 2});
    }
  };
  if (g.type() == GeomType::kPolygon) {
    add_ring(g.as_polygon().shell);
    for (const auto& h : g.as_polygon().holes) add_ring(h);
  } else if (g.type() == GeomType::kMultiPolygon) {
    for (const auto& part : g.as_multi_polygon().parts) {
      add_ring(part.shell);
      for (const auto& h : part.holes) add_ring(h);
    }
  }
  return out;
}

struct TypePair {
  int anchor;
  int probe;
};

class BatchRefineEquivalence : public ::testing::TestWithParam<TypePair> {};

TEST_P(BatchRefineEquivalence, IntersectsMatchesNaive) {
  Rng rng(4100 + GetParam().anchor * 10 + GetParam().probe);
  RefineStats stats;
  const int trials = 250;
  for (int trial = 0; trial < trials; ++trial) {
    const Geometry anchor = random_geometry(rng, GetParam().anchor);
    const Geometry probe = random_geometry(rng, GetParam().probe);
    const BatchRefiner refiner(anchor);
    EXPECT_EQ(refiner.intersects(probe, stats), intersects_naive(anchor, probe))
        << "anchor=" << to_wkt(anchor) << "\nprobe=" << to_wkt(probe);
  }
  // Every call lands in exactly one bucket.
  EXPECT_EQ(stats.total(), static_cast<std::uint64_t>(trials));
}

TEST_P(BatchRefineEquivalence, ContainsMatchesNaive) {
  const int anchor_kind = GetParam().anchor;
  if (anchor_kind != 2 && anchor_kind != 4) {
    GTEST_SKIP() << "contains requires areal anchor";
  }
  Rng rng(5200 + anchor_kind * 10 + GetParam().probe);
  RefineStats stats;
  const int trials = 250;
  for (int trial = 0; trial < trials; ++trial) {
    const Geometry anchor = random_geometry(rng, anchor_kind);
    const Geometry probe = random_geometry(rng, GetParam().probe);
    const BatchRefiner refiner(anchor);
    EXPECT_EQ(refiner.contains(probe, stats), contains_naive(anchor, probe))
        << "anchor=" << to_wkt(anchor) << "\nprobe=" << to_wkt(probe);
  }
  EXPECT_EQ(stats.total(), static_cast<std::uint64_t>(trials));
}

TEST_P(BatchRefineEquivalence, WithinDistanceMatchesPerPair) {
  Rng rng(6300 + GetParam().anchor * 10 + GetParam().probe);
  const GeometryEngine& engine = GeometryEngine::prepared();
  RefineStats stats;
  const int trials = 120;
  for (int trial = 0; trial < trials; ++trial) {
    const Geometry anchor = random_geometry(rng, GetParam().anchor);
    const Geometry probe = random_geometry(rng, GetParam().probe);
    const double d = rng.uniform(0, 40);
    const BatchRefiner refiner(anchor);
    const auto bound = engine.bind(anchor);
    EXPECT_EQ(refiner.within_distance(probe, d, stats),
              bound->within_distance(probe, d))
        << "anchor=" << to_wkt(anchor) << "\nprobe=" << to_wkt(probe) << "\nd=" << d;
  }
  EXPECT_EQ(stats.total(), static_cast<std::uint64_t>(trials));
}

std::vector<TypePair> all_pairs() {
  std::vector<TypePair> out;
  for (int a = 0; a < 5; ++a) {
    for (int p = 0; p < 5; ++p) out.push_back({a, p});
  }
  return out;
}

std::string type_pair_name(const TypePair& pair) {
  static const char* kNames[] = {"pt", "line", "poly", "mline", "mpoly"};
  return std::string(kNames[pair.anchor]) + "_vs_" + kNames[pair.probe];
}

INSTANTIATE_TEST_SUITE_P(AllTypePairs, BatchRefineEquivalence,
                         ::testing::ValuesIn(all_pairs()),
                         [](const auto& info) { return type_pair_name(info.param); });

// ---------------------------------------------------------------------------
// Holes, boundary touches, slivers
// ---------------------------------------------------------------------------

TEST(BatchRefine, DonutMatchesNaiveIncludingBoundaryTouch) {
  Rng rng(7100);
  RefineStats stats;
  std::uint64_t calls = 0;
  for (int trial = 0; trial < 60; ++trial) {
    // Alternate single donuts and two-donut multipolygons.
    Geometry anchor;
    if (trial % 2 == 0) {
      anchor = random_donut(rng);
    } else {
      std::vector<Polygon> parts;
      parts.push_back(random_donut(rng).as_polygon());
      parts.push_back(random_donut(rng).as_polygon());
      anchor = Geometry::multi_polygon(std::move(parts));
    }
    const BatchRefiner refiner(anchor);
    // Exact boundary touches: shell/hole vertices and edge midpoints probe
    // as points — covered (boundary counts) in both implementations.
    for (const Coord& p : boundary_probes(anchor)) {
      const Geometry probe = Geometry::point(p.x, p.y);
      ++calls;
      EXPECT_EQ(refiner.intersects(probe, stats), intersects_naive(anchor, probe))
          << "anchor=" << to_wkt(anchor) << "\nboundary point " << p.x << "," << p.y;
      ++calls;
      EXPECT_EQ(refiner.contains(probe, stats), contains_naive(anchor, probe))
          << "anchor=" << to_wkt(anchor) << "\nboundary point " << p.x << "," << p.y;
    }
    // Random probes around the donut, including deep inside the hole.
    for (int i = 0; i < 40; ++i) {
      const Geometry probe = random_geometry(rng, static_cast<int>(rng.next_below(5)));
      ++calls;
      EXPECT_EQ(refiner.intersects(probe, stats), intersects_naive(anchor, probe))
          << "anchor=" << to_wkt(anchor) << "\nprobe=" << to_wkt(probe);
    }
  }
  EXPECT_EQ(stats.total(), calls);
}

TEST(BatchRefine, SharedEdgeProbes) {
  // A probe polygon sharing a full edge with the anchor: touches without
  // interior overlap, the classic boundary-case disagreement source.
  const Geometry anchor =
      Geometry::polygon({{0, 0}, {10, 0}, {10, 10}, {0, 10}, {0, 0}});
  const BatchRefiner refiner(anchor);
  RefineStats stats;
  const Geometry neighbor =
      Geometry::polygon({{10, 0}, {20, 0}, {20, 10}, {10, 10}, {10, 0}});
  EXPECT_EQ(refiner.intersects(neighbor, stats), intersects_naive(anchor, neighbor));
  EXPECT_TRUE(refiner.intersects(neighbor, stats));
  const Geometry edge_line = Geometry::line_string({{10, 2}, {10, 8}});
  EXPECT_EQ(refiner.intersects(edge_line, stats), intersects_naive(anchor, edge_line));
  EXPECT_EQ(refiner.contains(edge_line, stats), contains_naive(anchor, edge_line));
}

TEST(BatchRefine, SliverPolygonsMatchNaive) {
  Rng rng(7300);
  RefineStats stats;
  std::uint64_t calls = 0;
  for (int trial = 0; trial < 80; ++trial) {
    const Geometry anchor = random_sliver(rng);
    const BatchRefiner refiner(anchor);
    const Envelope& env = anchor.envelope();
    // Probes hugging the sliver: on it, just off it, and crossing it.
    const double mx = (env.min_x() + env.max_x()) / 2;
    const Geometry probes[] = {
        Geometry::point(mx, env.min_y()),
        Geometry::point(mx, (env.min_y() + env.max_y()) / 2),
        Geometry::point(mx, env.max_y() + 2e-8),
        Geometry::line_string({{mx, env.min_y() - 1}, {mx, env.max_y() + 1}}),
        Geometry::line_string({{env.min_x() - 1, env.max_y() + 1e-7},
                               {env.max_x() + 1, env.max_y() + 1e-7}}),
    };
    for (const Geometry& probe : probes) {
      ++calls;
      EXPECT_EQ(refiner.intersects(probe, stats), intersects_naive(anchor, probe))
          << "anchor=" << to_wkt(anchor) << "\nprobe=" << to_wkt(probe);
    }
  }
  EXPECT_EQ(stats.total(), calls);
}

// ---------------------------------------------------------------------------
// Batched point pass and approximation soundness
// ---------------------------------------------------------------------------

TEST(BatchRefine, CoversPointsMatchesPerPointNaive) {
  Rng rng(7500);
  for (int trial = 0; trial < 40; ++trial) {
    const int kind = (trial % 3 == 0) ? 4 : 2;
    Geometry anchor =
        (trial % 5 == 0) ? random_donut(rng) : random_geometry(rng, kind);
    const BatchRefiner refiner(anchor);
    ASSERT_TRUE(refiner.has_areal());
    std::vector<Coord> pts;
    for (int i = 0; i < 120; ++i) {
      pts.push_back({rng.uniform(-70, 70), rng.uniform(-70, 70)});
    }
    for (const Coord& p : boundary_probes(anchor)) pts.push_back(p);
    std::vector<std::uint8_t> covered;
    RefineStats stats;
    refiner.covers_points(pts, covered, stats);
    ASSERT_EQ(covered.size(), pts.size());
    EXPECT_EQ(stats.total(), pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
      const Geometry probe = Geometry::point(pts[i].x, pts[i].y);
      EXPECT_EQ(covered[i] != 0, intersects_naive(anchor, probe))
          << "anchor=" << to_wkt(anchor) << "\npoint " << pts[i].x << "," << pts[i].y;
    }
  }
}

TEST(BatchRefine, InnerRectIsSound) {
  // Every point of a verified inscribed rectangle must be covered by the
  // anchor — the early-accept path rests on exactly this.
  Rng rng(7700);
  int verified_rects = 0;
  for (int trial = 0; trial < 60; ++trial) {
    Geometry anchor =
        (trial % 4 == 0) ? random_donut(rng) : random_geometry(rng, trial % 2 == 0 ? 2 : 4);
    const BatchRefiner refiner(anchor);
    for (std::size_t part = 0; part < refiner.part_count(); ++part) {
      const Envelope& rect = refiner.inner_rect(part);
      if (rect.empty()) continue;
      ++verified_rects;
      for (int i = 0; i < 40; ++i) {
        const Coord p{rng.uniform(rect.min_x(), rect.max_x()),
                      rng.uniform(rect.min_y(), rect.max_y())};
        EXPECT_TRUE(intersects_naive(anchor, Geometry::point(p.x, p.y)))
            << "anchor=" << to_wkt(anchor) << "\ninner-rect point " << p.x << "," << p.y;
      }
    }
  }
  // The star/donut generators produce fat polygons; the heuristic must
  // prove rectangles for a healthy share of them or early accepts are dead.
  EXPECT_GT(verified_rects, 20);
}

TEST(BatchRefine, PointAnchorFallsBackToExact) {
  const Geometry anchor = Geometry::point(3, 3);
  const BatchRefiner refiner(anchor);
  RefineStats stats;
  EXPECT_TRUE(refiner.intersects(Geometry::point(3, 3), stats));
  EXPECT_FALSE(refiner.intersects(Geometry::point(3, 4), stats));
  EXPECT_TRUE(refiner.intersects(Geometry::line_string({{0, 0}, {6, 6}}), stats));
  // Point anchors have no approximations: everything is an exact test.
  EXPECT_EQ(stats.exact_tests, 3u);
  EXPECT_EQ(stats.early_accepts, 0u);
  EXPECT_EQ(stats.early_rejects, 0u);
}

}  // namespace
}  // namespace sjc::geom
