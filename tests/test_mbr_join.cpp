// MBR join algorithm tests: every algorithm must emit exactly the set of
// intersecting (left, right) pairs — compared against the nested-loop
// reference, across sizes, shapes and skews.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "index/mbr_join.hpp"
#include "util/rng.hpp"

namespace sjc::index {
namespace {

using PairSet = std::set<std::pair<std::uint32_t, std::uint32_t>>;

PairSet collect(LocalJoinAlgorithm algo, const std::vector<IndexEntry>& left,
                const std::vector<IndexEntry>& right) {
  PairSet out;
  local_mbr_join(algo, left, right, [&out](std::uint32_t l, std::uint32_t r) {
    const auto [it, inserted] = out.insert({l, r});
    EXPECT_TRUE(inserted) << "duplicate pair (" << l << "," << r << ")";
  });
  return out;
}

std::vector<IndexEntry> random_entries(Rng& rng, std::size_t n, double extent,
                                       double max_size) {
  std::vector<IndexEntry> out;
  for (std::uint32_t i = 0; i < n; ++i) {
    const double x = rng.uniform(0, extent);
    const double y = rng.uniform(0, extent);
    out.push_back({geom::Envelope(x, y, x + rng.uniform(0, max_size),
                                  y + rng.uniform(0, max_size)),
                   i});
  }
  return out;
}

const LocalJoinAlgorithm kAllAlgorithms[] = {
    LocalJoinAlgorithm::kPlaneSweep,
    LocalJoinAlgorithm::kSyncTraversal,
    LocalJoinAlgorithm::kIndexedNestedLoop,
    LocalJoinAlgorithm::kIndexedNestedLoopDynamic,
    LocalJoinAlgorithm::kNestedLoop,
};

class MbrJoinTest : public ::testing::TestWithParam<LocalJoinAlgorithm> {};

TEST_P(MbrJoinTest, EmptySidesYieldNothing) {
  Rng rng(1);
  const auto some = random_entries(rng, 10, 10, 2);
  EXPECT_TRUE(collect(GetParam(), {}, some).empty());
  EXPECT_TRUE(collect(GetParam(), some, {}).empty());
  EXPECT_TRUE(collect(GetParam(), {}, {}).empty());
}

TEST_P(MbrJoinTest, SimpleOverlap) {
  const std::vector<IndexEntry> left = {{geom::Envelope(0, 0, 2, 2), 0},
                                        {geom::Envelope(5, 5, 6, 6), 1}};
  const std::vector<IndexEntry> right = {{geom::Envelope(1, 1, 3, 3), 0},
                                         {geom::Envelope(10, 10, 11, 11), 1}};
  const PairSet expected = {{0, 0}};
  EXPECT_EQ(collect(GetParam(), left, right), expected);
}

TEST_P(MbrJoinTest, TouchingEdgesCount) {
  const std::vector<IndexEntry> left = {{geom::Envelope(0, 0, 1, 1), 0}};
  const std::vector<IndexEntry> right = {{geom::Envelope(1, 0, 2, 1), 0}};
  EXPECT_EQ(collect(GetParam(), left, right).size(), 1u);
}

TEST_P(MbrJoinTest, MatchesNestedLoopOnRandomWorkloads) {
  Rng rng(0xce11);
  for (const auto& [n_left, n_right] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 1}, {10, 10}, {100, 7}, {7, 100}, {300, 300}}) {
    const auto left = random_entries(rng, n_left, 50, 4);
    const auto right = random_entries(rng, n_right, 50, 4);
    const PairSet expected = collect(LocalJoinAlgorithm::kNestedLoop, left, right);
    EXPECT_EQ(collect(GetParam(), left, right), expected)
        << local_join_algorithm_name(GetParam()) << " " << n_left << "x" << n_right;
  }
}

TEST_P(MbrJoinTest, HandlesDegeneratePointEnvelopes) {
  Rng rng(0xdead);
  std::vector<IndexEntry> left;
  std::vector<IndexEntry> right;
  for (std::uint32_t i = 0; i < 100; ++i) {
    const double x = rng.uniform(0, 10);
    const double y = rng.uniform(0, 10);
    left.push_back({geom::Envelope::of_point(x, y), i});
    right.push_back({geom::Envelope(x - 0.5, y - 0.5, x + 0.5, y + 0.5), i});
  }
  const PairSet expected = collect(LocalJoinAlgorithm::kNestedLoop, left, right);
  EXPECT_EQ(collect(GetParam(), left, right), expected);
  EXPECT_GE(expected.size(), 100u);  // each point is inside its own box
}

TEST_P(MbrJoinTest, SkewedClusterWorkload) {
  // Everything piled into one corner: stresses tree splits and sweep ties.
  Rng rng(0x5eed);
  std::vector<IndexEntry> left;
  std::vector<IndexEntry> right;
  for (std::uint32_t i = 0; i < 200; ++i) {
    const double x = rng.uniform(0, 1);
    left.push_back({geom::Envelope(x, x, x + 0.01, x + 0.01), i});
    right.push_back({geom::Envelope(x, x, x + 0.02, x + 0.02), i});
  }
  const PairSet expected = collect(LocalJoinAlgorithm::kNestedLoop, left, right);
  EXPECT_EQ(collect(GetParam(), left, right), expected);
}

TEST_P(MbrJoinTest, IdenticalEnvelopesAllPair) {
  std::vector<IndexEntry> left;
  std::vector<IndexEntry> right;
  for (std::uint32_t i = 0; i < 20; ++i) {
    left.push_back({geom::Envelope(0, 0, 1, 1), i});
    right.push_back({geom::Envelope(0, 0, 1, 1), i});
  }
  EXPECT_EQ(collect(GetParam(), left, right).size(), 400u);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, MbrJoinTest,
                         ::testing::ValuesIn(kAllAlgorithms),
                         [](const auto& info) {
                           std::string name = local_join_algorithm_name(info.param);
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(MbrJoin, AlgorithmNamesAreStable) {
  EXPECT_STREQ(local_join_algorithm_name(LocalJoinAlgorithm::kPlaneSweep),
               "plane-sweep");
  EXPECT_STREQ(local_join_algorithm_name(LocalJoinAlgorithm::kSyncTraversal),
               "sync-rtree-traversal");
}

TEST(MbrJoin, SyncTraversalDirectApi) {
  Rng rng(12);
  const auto left = random_entries(rng, 50, 20, 2);
  const auto right = random_entries(rng, 50, 20, 2);
  const StrTree lt(left);
  const StrTree rt(right);
  PairSet got;
  sync_traversal_join(lt, rt, [&](std::uint32_t l, std::uint32_t r) {
    got.insert({l, r});
  });
  EXPECT_EQ(got, collect(LocalJoinAlgorithm::kNestedLoop, left, right));
}

}  // namespace
}  // namespace sjc::index
