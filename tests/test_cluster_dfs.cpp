// Tests for the cluster model (specs, task durations, scheduling) and the
// simulated DFS (catalog, blocks, replication, cost structure).
#include <gtest/gtest.h>

#include <set>

#include "cluster/cluster_spec.hpp"
#include "cluster/counters.hpp"
#include "cluster/scheduler.hpp"
#include "cluster/sim_task.hpp"
#include "dfs/sim_dfs.hpp"
#include "cluster/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/status.hpp"

namespace sjc {
namespace {

// ---------------------------------------------------------------------------
// cluster specs
// ---------------------------------------------------------------------------

TEST(ClusterSpec, WorkstationShape) {
  const auto ws = cluster::ClusterSpec::workstation();
  EXPECT_EQ(ws.name, "WS");
  EXPECT_EQ(ws.node_count, 1u);
  EXPECT_EQ(ws.total_slots(), 16u);
  EXPECT_EQ(ws.aggregate_memory(), 128ULL * 1024 * 1024 * 1024);
}

TEST(ClusterSpec, Ec2Shape) {
  const auto ec2 = cluster::ClusterSpec::ec2(10);
  EXPECT_EQ(ec2.name, "EC2-10");
  EXPECT_EQ(ec2.total_slots(), 80u);
  EXPECT_EQ(ec2.aggregate_memory(), 150ULL * 1024 * 1024 * 1024);
}

TEST(ClusterSpec, PaperMemoryOrdering) {
  // The OOM analysis depends on: EC2-6 < EC2-8 < WS < EC2-10 aggregate.
  const auto ws = cluster::ClusterSpec::workstation().aggregate_memory();
  EXPECT_LT(cluster::ClusterSpec::ec2(6).aggregate_memory(),
            cluster::ClusterSpec::ec2(8).aggregate_memory());
  EXPECT_LT(cluster::ClusterSpec::ec2(8).aggregate_memory(), ws);
  EXPECT_LT(ws, cluster::ClusterSpec::ec2(10).aggregate_memory());
}

TEST(ClusterSpec, PerSlotBandwidthDividesByCore) {
  const auto ws = cluster::ClusterSpec::workstation();
  EXPECT_DOUBLE_EQ(ws.per_slot_disk_read_bw() * ws.node.cores, ws.node.disk_read_bw);
}

// ---------------------------------------------------------------------------
// sim task durations
// ---------------------------------------------------------------------------

TEST(SimTask, CpuOnlyScalesWithDataScaleAndSpeed) {
  cluster::SimTask t;
  t.cpu_seconds = 0.001;
  auto spec = cluster::ClusterSpec::workstation();
  EXPECT_DOUBLE_EQ(t.duration(spec, 1000.0), 1.0);
  spec.node.cpu_speed = 0.5;
  EXPECT_DOUBLE_EQ(t.duration(spec, 1000.0), 2.0);
}

TEST(SimTask, IoChargesPerSlotBandwidth) {
  cluster::SimTask t;
  t.disk_read = 1024;  // scaled bytes
  const auto spec = cluster::ClusterSpec::workstation();
  const double expected = 1024.0 * 1000.0 / spec.per_slot_disk_read_bw();
  EXPECT_DOUBLE_EQ(t.duration(spec, 1000.0), expected);
}

TEST(SimTask, FixedOverheadIsUnscaled) {
  cluster::SimTask t;
  t.fixed_overhead = 2.5;
  EXPECT_DOUBLE_EQ(t.duration(cluster::ClusterSpec::workstation(), 12345.0), 2.5);
}

TEST(SimTask, AddAccumulates) {
  cluster::SimTask a;
  a.cpu_seconds = 1;
  a.disk_read = 10;
  cluster::SimTask b;
  b.cpu_seconds = 2;
  b.network = 5;
  a.add(b);
  EXPECT_EQ(a.cpu_seconds, 3.0);
  EXPECT_EQ(a.disk_read, 10u);
  EXPECT_EQ(a.network, 5u);
}

// ---------------------------------------------------------------------------
// scheduler
// ---------------------------------------------------------------------------

TEST(Scheduler, EmptyIsZero) {
  EXPECT_EQ(cluster::list_schedule_makespan({}, 4), 0.0);
}

TEST(Scheduler, SingleSlotSums) {
  EXPECT_DOUBLE_EQ(cluster::list_schedule_makespan({1, 2, 3}, 1), 6.0);
}

TEST(Scheduler, PerfectlyParallel) {
  EXPECT_DOUBLE_EQ(cluster::list_schedule_makespan({2, 2, 2, 2}, 4), 2.0);
}

TEST(Scheduler, FifoOrderMatters) {
  // FIFO: [4, 1, 1, 1, 1] on 2 slots -> slot A runs 4, slot B runs the
  // four 1s -> makespan 4. LPT gives the same here, but [1,1,1,1,4]
  // FIFO: A:1+1+4=6?? no: A gets t0(1) then t2(1) then t4(4)=6, B: t1+t3=2.
  EXPECT_DOUBLE_EQ(cluster::list_schedule_makespan({4, 1, 1, 1, 1}, 2), 4.0);
  EXPECT_DOUBLE_EQ(cluster::list_schedule_makespan({1, 1, 1, 1, 4}, 2), 6.0);
  EXPECT_DOUBLE_EQ(cluster::lpt_schedule_makespan({1, 1, 1, 1, 4}, 2), 4.0);
}

TEST(Scheduler, MakespanLowerBoundedByMaxAndMean) {
  const std::vector<double> tasks = {3, 1, 4, 1, 5, 9, 2, 6};
  const double makespan = cluster::list_schedule_makespan(tasks, 3);
  EXPECT_GE(makespan, 9.0);                 // longest task
  EXPECT_GE(makespan, (3 + 1 + 4 + 1 + 5 + 9 + 2 + 6) / 3.0);  // total / slots
}

TEST(Scheduler, RejectsZeroSlots) {
  EXPECT_THROW(cluster::list_schedule_makespan({1.0}, 0), InvalidArgument);
}

// ---------------------------------------------------------------------------
// SimDfs
// ---------------------------------------------------------------------------

dfs::DfsConfig small_dfs() {
  return dfs::DfsConfig{.block_size = 100, .replication = 3, .datanode_count = 5,
                        .seed = 1};
}

TEST(SimDfs, PutGetTyped) {
  dfs::SimDfs fs(small_dfs());
  fs.put("a.txt", std::string("payload"), 250);
  EXPECT_TRUE(fs.exists("a.txt"));
  EXPECT_EQ(fs.get<std::string>("a.txt"), "payload");
  EXPECT_EQ(fs.file_size("a.txt"), 250u);
}

TEST(SimDfs, MissingFileThrows) {
  dfs::SimDfs fs(small_dfs());
  EXPECT_THROW(fs.get<int>("nope"), SjcError);
  EXPECT_THROW(fs.meta("nope"), SjcError);
  EXPECT_THROW(fs.remove("nope"), SjcError);
}

TEST(SimDfs, TypeMismatchThrows) {
  dfs::SimDfs fs(small_dfs());
  fs.put("a", 42, 10);
  EXPECT_THROW(fs.get<std::string>("a"), SjcError);
}

TEST(SimDfs, BlockCountCeils) {
  dfs::SimDfs fs(small_dfs());
  fs.put("exact", std::any(), 300);
  fs.put("ragged", std::any(), 301);
  fs.put("tiny", std::any(), 1);
  fs.put("empty", std::any(), 0);
  EXPECT_EQ(fs.block_count("exact"), 3u);
  EXPECT_EQ(fs.block_count("ragged"), 4u);
  EXPECT_EQ(fs.block_count("tiny"), 1u);
  EXPECT_EQ(fs.block_count("empty"), 1u);  // empty file still has one block
}

TEST(SimDfs, ReplicationCappedByNodes) {
  dfs::SimDfs fs(dfs::DfsConfig{.block_size = 100, .replication = 3,
                                .datanode_count = 2, .seed = 1});
  fs.put("f", std::any(), 100);
  EXPECT_EQ(fs.meta("f").blocks[0].replica_nodes.size(), 2u);
}

TEST(SimDfs, ReplicasOnDistinctNodes) {
  dfs::SimDfs fs(small_dfs());
  fs.put("f", std::any(), 500);
  for (const auto& block : fs.meta("f").blocks) {
    std::set<std::uint32_t> nodes(block.replica_nodes.begin(),
                                  block.replica_nodes.end());
    EXPECT_EQ(nodes.size(), block.replica_nodes.size());
  }
}

TEST(SimDfs, OverwriteReplacesAndAdjustsTotals) {
  dfs::SimDfs fs(small_dfs());
  fs.put("f", std::any(), 100);
  fs.put("f", std::any(), 50);
  EXPECT_EQ(fs.total_bytes(), 50u);
  fs.remove("f");
  EXPECT_EQ(fs.total_bytes(), 0u);
  EXPECT_FALSE(fs.exists("f"));
}

TEST(SimDfs, ListByPrefix) {
  dfs::SimDfs fs(small_dfs());
  fs.put("a.part/0", std::any(), 1);
  fs.put("a.part/1", std::any(), 1);
  fs.put("b.raw", std::any(), 1);
  const auto listed = fs.list("a.part/");
  EXPECT_EQ(listed.size(), 2u);
  EXPECT_EQ(fs.list("zzz").size(), 0u);
}

TEST(SimDfs, WriteCostChargesReplication) {
  dfs::SimDfs fs(small_dfs());
  const auto cost = fs.write_cost(1000);
  EXPECT_EQ(cost.disk_write, 3000u);  // 3 replicas
  EXPECT_EQ(cost.network, 2000u);     // 2 remote copies
}

TEST(SimDfs, ReadCostLocalityModel) {
  dfs::SimDfs fs(small_dfs());  // replication 3 of 5 nodes -> 60% local
  const auto cost = fs.read_cost(1000);
  EXPECT_EQ(cost.disk_read, 1000u);
  EXPECT_EQ(cost.network, 400u);  // 40% remote
}

TEST(SimDfs, SingleNodeReadsAreLocal) {
  dfs::SimDfs fs(dfs::DfsConfig{.block_size = 100, .replication = 3,
                                .datanode_count = 1, .seed = 1});
  EXPECT_EQ(fs.read_cost(1000).network, 0u);
  EXPECT_EQ(fs.write_cost(1000).network, 0u);
}

TEST(SimDfs, RejectsBadConfig) {
  EXPECT_THROW(dfs::SimDfs(dfs::DfsConfig{.block_size = 0, .replication = 1,
                                          .datanode_count = 1, .seed = 1}),
               InvalidArgument);
  EXPECT_THROW(dfs::SimDfs(dfs::DfsConfig{.block_size = 1, .replication = 0,
                                          .datanode_count = 1, .seed = 1}),
               InvalidArgument);
}

}  // namespace
}  // namespace sjc

namespace sjc {
namespace {

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

TEST(Counters, AddAndGet) {
  cluster::Counters counters;
  EXPECT_EQ(counters.get("x"), 0u);
  counters.add("x", 3);
  counters.add("x", 4);
  counters.add("y", 1);
  EXPECT_EQ(counters.get("x"), 7u);
  EXPECT_EQ(counters.snapshot().size(), 2u);
}

TEST(Counters, MergeAccumulates) {
  cluster::Counters a;
  cluster::Counters b;
  a.add("shared", 1);
  b.add("shared", 2);
  b.add("only_b", 5);
  a.merge(b);
  EXPECT_EQ(a.get("shared"), 3u);
  EXPECT_EQ(a.get("only_b"), 5u);
  EXPECT_EQ(b.get("shared"), 2u);  // source unchanged
}

TEST(Counters, CopyTransfersValues) {
  cluster::Counters a;
  a.add("k", 9);
  const cluster::Counters b = a;
  EXPECT_EQ(b.get("k"), 9u);
}

TEST(Counters, ThreadSafeIncrements) {
  cluster::Counters counters;
  ThreadPool pool(4);
  pool.parallel_for(1000, [&](std::size_t) { counters.add("hits", 1); });
  EXPECT_EQ(counters.get("hits"), 1000u);
}

TEST(RunMetricsExtra, SecondsWithPrefixAndMerge) {
  cluster::RunMetrics a;
  a.add_phase({.name = "A/map", .sim_seconds = 2.0});
  a.add_phase({.name = "A/reduce", .sim_seconds = 3.0});
  a.add_phase({.name = "join/local", .sim_seconds = 5.0});
  EXPECT_DOUBLE_EQ(a.seconds_with_prefix("A/"), 5.0);
  EXPECT_DOUBLE_EQ(a.seconds_with_prefix("join/"), 5.0);
  EXPECT_DOUBLE_EQ(a.seconds_with_prefix("nope"), 0.0);
  cluster::RunMetrics b;
  b.add_phase({.name = "B/map", .sim_seconds = 1.0});
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total_seconds(), 11.0);
  EXPECT_NE(a.to_string().find("B/map"), std::string::npos);
  EXPECT_NE(a.to_string().find("TOTAL"), std::string::npos);
}

}  // namespace
}  // namespace sjc
