// Tests for the naive (reference) predicates across geometry type pairs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "geom/algorithms.hpp"
#include "geom/exact_predicates.hpp"
#include "geom/predicates.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace sjc::geom {
namespace {

Geometry unit_square() {
  return Geometry::polygon({{0, 0}, {4, 0}, {4, 4}, {0, 4}, {0, 0}});
}

Geometry donut() {
  return Geometry::polygon({{0, 0}, {10, 0}, {10, 10}, {0, 10}, {0, 0}},
                           {{{3, 3}, {7, 3}, {7, 7}, {3, 7}, {3, 3}}});
}

// ---------------------------------------------------------------------------
// intersects
// ---------------------------------------------------------------------------

TEST(Intersects, PointPoint) {
  EXPECT_TRUE(intersects_naive(Geometry::point(1, 2), Geometry::point(1, 2)));
  EXPECT_FALSE(intersects_naive(Geometry::point(1, 2), Geometry::point(1, 3)));
}

TEST(Intersects, PointLine) {
  const Geometry l = Geometry::line_string({{0, 0}, {4, 4}});
  EXPECT_TRUE(intersects_naive(Geometry::point(2, 2), l));
  EXPECT_TRUE(intersects_naive(l, Geometry::point(2, 2)));  // symmetric
  EXPECT_FALSE(intersects_naive(Geometry::point(2, 3), l));
}

TEST(Intersects, PointPolygon) {
  EXPECT_TRUE(intersects_naive(Geometry::point(2, 2), unit_square()));
  EXPECT_TRUE(intersects_naive(Geometry::point(0, 2), unit_square()));  // boundary
  EXPECT_FALSE(intersects_naive(Geometry::point(5, 5), unit_square()));
}

TEST(Intersects, PointInHoleIsOutside) {
  EXPECT_FALSE(intersects_naive(Geometry::point(5, 5), donut()));
  EXPECT_TRUE(intersects_naive(Geometry::point(1, 5), donut()));
}

TEST(Intersects, LineLine) {
  const Geometry a = Geometry::line_string({{0, 0}, {4, 4}});
  const Geometry b = Geometry::line_string({{0, 4}, {4, 0}});
  const Geometry c = Geometry::line_string({{10, 10}, {11, 10}});
  EXPECT_TRUE(intersects_naive(a, b));
  EXPECT_FALSE(intersects_naive(a, c));
}

TEST(Intersects, LinePolygonCrossing) {
  const Geometry l = Geometry::line_string({{-1, 2}, {5, 2}});
  EXPECT_TRUE(intersects_naive(l, unit_square()));
  EXPECT_TRUE(intersects_naive(unit_square(), l));
}

TEST(Intersects, LineFullyInsidePolygon) {
  const Geometry l = Geometry::line_string({{1, 1}, {3, 3}});
  EXPECT_TRUE(intersects_naive(l, unit_square()));
}

TEST(Intersects, LineInsideHoleDoesNotIntersect) {
  const Geometry l = Geometry::line_string({{4, 4}, {6, 6}});
  EXPECT_FALSE(intersects_naive(l, donut()));
}

TEST(Intersects, LineCrossingHoleBoundary) {
  const Geometry l = Geometry::line_string({{5, 5}, {5, 9}});
  EXPECT_TRUE(intersects_naive(l, donut()));
}

TEST(Intersects, PolygonPolygonOverlap) {
  const Geometry a = unit_square();
  const Geometry b = Geometry::polygon({{2, 2}, {6, 2}, {6, 6}, {2, 6}, {2, 2}});
  EXPECT_TRUE(intersects_naive(a, b));
}

TEST(Intersects, PolygonContainedInPolygon) {
  const Geometry inner = Geometry::polygon({{1, 1}, {2, 1}, {2, 2}, {1, 2}, {1, 1}});
  EXPECT_TRUE(intersects_naive(inner, unit_square()));
  EXPECT_TRUE(intersects_naive(unit_square(), inner));
}

TEST(Intersects, PolygonInsideHoleDisjoint) {
  const Geometry in_hole = Geometry::polygon({{4, 4}, {6, 4}, {6, 6}, {4, 6}, {4, 4}});
  EXPECT_FALSE(intersects_naive(in_hole, donut()));
  EXPECT_FALSE(intersects_naive(donut(), in_hole));
}

TEST(Intersects, PolygonsTouchingAtEdge) {
  const Geometry a = unit_square();
  const Geometry b = Geometry::polygon({{4, 0}, {8, 0}, {8, 4}, {4, 4}, {4, 0}});
  EXPECT_TRUE(intersects_naive(a, b));
}

TEST(Intersects, MultiGeometryAnyPartCounts) {
  const Geometry m = Geometry::multi_polygon(
      {Polygon{{{20, 20}, {21, 20}, {21, 21}, {20, 21}, {20, 20}}, {}},
       Polygon{{{1, 1}, {2, 1}, {2, 2}, {1, 2}, {1, 1}}, {}}});
  EXPECT_TRUE(intersects_naive(m, unit_square()));
  EXPECT_TRUE(intersects_naive(unit_square(), m));
}

TEST(Intersects, EnvelopeDisjointShortCircuit) {
  const Geometry a = Geometry::line_string({{0, 0}, {1, 1}});
  const Geometry b = Geometry::line_string({{100, 100}, {101, 101}});
  EXPECT_FALSE(intersects_naive(a, b));
}

// ---------------------------------------------------------------------------
// contains (covers semantics)
// ---------------------------------------------------------------------------

TEST(Contains, PolygonPoint) {
  EXPECT_TRUE(contains_naive(unit_square(), Geometry::point(2, 2)));
  EXPECT_TRUE(contains_naive(unit_square(), Geometry::point(0, 0)));  // corner
  EXPECT_FALSE(contains_naive(unit_square(), Geometry::point(5, 5)));
}

TEST(Contains, DonutDoesNotContainHolePoint) {
  EXPECT_FALSE(contains_naive(donut(), Geometry::point(5, 5)));
  EXPECT_TRUE(contains_naive(donut(), Geometry::point(3, 5)));  // hole boundary
}

TEST(Contains, PolygonLine) {
  EXPECT_TRUE(contains_naive(unit_square(), Geometry::line_string({{1, 1}, {3, 3}})));
  EXPECT_FALSE(contains_naive(unit_square(), Geometry::line_string({{1, 1}, {9, 9}})));
  // On-boundary line is covered.
  EXPECT_TRUE(contains_naive(unit_square(), Geometry::line_string({{0, 0}, {4, 0}})));
}

TEST(Contains, LineThroughHoleNotContained) {
  EXPECT_FALSE(contains_naive(donut(), Geometry::line_string({{1, 5}, {9, 5}})));
}

TEST(Contains, PolygonPolygon) {
  const Geometry inner = Geometry::polygon({{1, 1}, {3, 1}, {3, 3}, {1, 3}, {1, 1}});
  EXPECT_TRUE(contains_naive(unit_square(), inner));
  EXPECT_FALSE(contains_naive(inner, unit_square()));
}

TEST(Contains, NonArealLeftThrows) {
  EXPECT_THROW(contains_naive(Geometry::point(0, 0), Geometry::point(0, 0)),
               InvalidArgument);
  EXPECT_THROW(
      contains_naive(Geometry::line_string({{0, 0}, {1, 1}}), Geometry::point(0, 0)),
      InvalidArgument);
}

TEST(Contains, MultiPolygonContainsAcrossParts) {
  const Geometry m = Geometry::multi_polygon(
      {Polygon{{{0, 0}, {4, 0}, {4, 4}, {0, 4}, {0, 0}}, {}},
       Polygon{{{10, 10}, {14, 10}, {14, 14}, {10, 14}, {10, 10}}, {}}});
  EXPECT_TRUE(contains_naive(m, Geometry::point(2, 2)));
  EXPECT_TRUE(contains_naive(m, Geometry::point(12, 12)));
  EXPECT_FALSE(contains_naive(m, Geometry::point(7, 7)));
}

// ---------------------------------------------------------------------------
// distance / within_distance
// ---------------------------------------------------------------------------

TEST(Distance, IntersectingIsZero) {
  EXPECT_EQ(distance_naive(Geometry::point(2, 2), unit_square()), 0.0);
}

TEST(Distance, PointToPolygonBoundary) {
  EXPECT_DOUBLE_EQ(distance_naive(Geometry::point(7, 2), unit_square()), 3.0);
}

TEST(Distance, PointToLine) {
  const Geometry l = Geometry::line_string({{0, 0}, {10, 0}});
  EXPECT_DOUBLE_EQ(distance_naive(Geometry::point(5, 4), l), 4.0);
}

TEST(Distance, LineToLine) {
  const Geometry a = Geometry::line_string({{0, 0}, {10, 0}});
  const Geometry b = Geometry::line_string({{0, 3}, {10, 3}});
  EXPECT_DOUBLE_EQ(distance_naive(a, b), 3.0);
}

TEST(Distance, PolygonToPolygon) {
  const Geometry a = unit_square();
  const Geometry b = Geometry::polygon({{7, 0}, {9, 0}, {9, 4}, {7, 4}, {7, 0}});
  EXPECT_DOUBLE_EQ(distance_naive(a, b), 3.0);
}

// Pin for the multipart envelope-gap pruning in distance_naive: the pruned
// scan must return the EXACT value of the unoptimized all-pairs scan. The
// reference decomposes both sides into single-part geometries (whose
// distance_naive calls take the pruning-free 1x1 fast path) and minimizes
// over every part pair; min/sqrt commute exactly, so EXPECT_DOUBLE_EQ.
TEST(Distance, MultipartPruningMatchesUnprunedScan) {
  const auto decompose = [](const Geometry& g) {
    std::vector<Geometry> parts;
    switch (g.type()) {
      case GeomType::kMultiLineString:
        for (const auto& part : g.as_multi_line_string().parts) {
          parts.push_back(Geometry::line_string(part.coords));
        }
        break;
      case GeomType::kMultiPolygon:
        for (const auto& part : g.as_multi_polygon().parts) {
          parts.push_back(Geometry::polygon(part.shell, part.holes));
        }
        break;
      default:
        parts.push_back(g);
    }
    return parts;
  };
  Rng rng(808);
  const auto random_multi = [&rng](bool lines) -> Geometry {
    const auto k = 2 + rng.next_below(4);
    if (lines) {
      std::vector<LineString> parts;
      for (std::uint64_t p = 0; p < k; ++p) {
        const double x = rng.uniform(-80, 80);
        const double y = rng.uniform(-80, 80);
        parts.push_back(LineString{{{x, y},
                                    {x + rng.uniform(-9, 9), y + rng.uniform(-9, 9)},
                                    {x + rng.uniform(-9, 9), y + rng.uniform(-9, 9)}}});
      }
      return Geometry::multi_line_string(std::move(parts));
    }
    std::vector<Polygon> parts;
    for (std::uint64_t p = 0; p < k; ++p) {
      const double x = rng.uniform(-80, 80);
      const double y = rng.uniform(-80, 80);
      const double w = rng.uniform(1, 8);
      parts.push_back(Polygon{{{x, y}, {x + w, y}, {x + w, y + w}, {x, y + w}, {x, y}},
                              {}});
    }
    return Geometry::multi_polygon(std::move(parts));
  };
  for (int trial = 0; trial < 200; ++trial) {
    const Geometry a = random_multi(trial % 2 == 0);
    const Geometry b = random_multi(trial % 3 == 0);
    double reference = std::numeric_limits<double>::infinity();
    for (const Geometry& pa : decompose(a)) {
      for (const Geometry& pb : decompose(b)) {
        reference = std::min(reference, distance_naive(pa, pb));
      }
    }
    EXPECT_DOUBLE_EQ(distance_naive(a, b), reference) << "trial " << trial;
  }
}

TEST(WithinDistance, ThresholdSemantics) {
  const Geometry p = Geometry::point(7, 2);
  EXPECT_TRUE(within_distance_naive(p, unit_square(), 3.0));   // exactly at
  EXPECT_TRUE(within_distance_naive(p, unit_square(), 3.5));
  EXPECT_FALSE(within_distance_naive(p, unit_square(), 2.9));
}

TEST(WithinDistance, NegativeDistanceThrows) {
  EXPECT_THROW(within_distance_naive(Geometry::point(0, 0), unit_square(), -1.0),
               InvalidArgument);
}

TEST(WithinDistance, EnvelopeEarlyOut) {
  const Geometry far = Geometry::point(1000, 1000);
  EXPECT_FALSE(within_distance_naive(far, unit_square(), 10.0));
}

// ---------------------------------------------------------------------------
// Adaptive exact predicates: degenerate-case regression corpus + oracles
// ---------------------------------------------------------------------------

int sign_of(double v) { return v > 0.0 ? 1 : (v < 0.0 ? -1 : 0); }

/// Integer-exact orientation oracle: all inputs must be integers small
/// enough that every product fits __int128 (|coord| < 2^60 suffices).
int orient_oracle(long long ax, long long ay, long long bx, long long by,
                  long long cx, long long cy) {
  const __int128 det = static_cast<__int128>(bx - ax) * (cy - ay) -
                       static_cast<__int128>(by - ay) * (cx - ax);
  return det > 0 ? 1 : (det < 0 ? -1 : 0);
}

TEST(ExactPredicates, CollinearTriplesAreExactlyZero) {
  // Exactly-collinear triples whose float determinant is garbage: the
  // classic 2D robustness failures.
  EXPECT_EQ(orientation({0, 0}, {1e16, 1e16}, {3, 3}), 0.0);
  EXPECT_EQ(orientation({12, 12}, {24, 24}, {0.5, 0.5}), 0.0);
  // Midpoint of a huge span: (-8e307,0) -> (8e307,2) passes through (0,1)
  // exactly; detsum overflows to inf, forcing the magnitude-rescue path.
  EXPECT_EQ(orientation({-8e307, 0}, {8e307, 2}, {0, 1}), 0.0);
  // Near-collinear by one ulp either side of a long integer edge must get
  // the (tiny but nonzero) sign right.
  EXPECT_GT(orientation({0, 0}, {1e16, 1e16}, {3, std::nextafter(3.0, 4.0)}), 0.0);
  EXPECT_LT(orientation({0, 0}, {1e16, 1e16}, {3, std::nextafter(3.0, 2.0)}), 0.0);
}

TEST(ExactPredicates, OverflowingDeterminantsEscalateAndRescale) {
  // (b - a) x (c - a) overflows to -inf in floats; the rescue path rescales
  // by an exact power of two and still decides the sign exactly.
  const std::uint64_t slow0 = exact::slowpath_calls();
  EXPECT_LT(orientation({-8e307, -8e307}, {8e307, 8e307}, {8e307, -8e307}), 0.0);
  EXPECT_GT(orientation({-8e307, -8e307}, {8e307, 8e307}, {-8e307, 8e307}), 0.0);
  // The diagonal itself through +/-8e307 is exact.
  EXPECT_EQ(orientation({-8e307, -8e307}, {8e307, 8e307}, {0, 0}), 0.0);
  EXPECT_GT(exact::slowpath_calls(), slow0) << "overflow cases must escalate";
}

TEST(ExactPredicates, SubnormalSliversKeepExactSigns) {
  // Sliver thinner than any normal number: edge (0,0)-(4, 2^-1072). The
  // probe (1, 2^-1074) lies exactly on the line (all products are exact
  // powers of two); (1, 0) lies strictly below it even though the error
  // bound underflows to zero.
  const Coord a{0.0, 0.0};
  const Coord b{4.0, 0x1p-1072};
  EXPECT_EQ(orientation(a, b, {1.0, 0x1p-1074}), 0.0);
  EXPECT_TRUE(point_on_segment({1.0, 0x1p-1074}, a, b));
  EXPECT_LT(orientation(a, b, {1.0, 0.0}), 0.0);
  EXPECT_FALSE(point_on_segment({1.0, 0.0}, a, b));
  EXPECT_GT(orientation(a, b, {1.0, 0x1p-1072}), 0.0);
}

TEST(ExactPredicates, SharedEdgeProbesAgreeWithOracle) {
  // Polygons sharing an edge: every vertex and midpoint decision on the
  // shared edge is a zero-determinant case.
  const Geometry left = Geometry::polygon({{0, 0}, {4, 0}, {4, 4}, {0, 4}, {0, 0}});
  const Geometry right = Geometry::polygon({{4, 0}, {8, 0}, {8, 4}, {4, 4}, {4, 0}});
  EXPECT_TRUE(intersects_naive(left, right));
  EXPECT_TRUE(intersects_naive(left, Geometry::point(4, 2)));
  EXPECT_TRUE(intersects_naive(right, Geometry::point(4, 2)));
  EXPECT_FALSE(contains_naive(left, right));
}

TEST(ExactPredicates, RandomizedNearCollinearMatchesInt128Oracle) {
  // Integer grids with constructed near-collinear triples: b and c sit on a
  // shared direction from a, with c nudged by -1/0/+1 on one axis. Floats
  // represent every input exactly; the int128 oracle is ground truth.
  Rng rng(424242);
  for (int trial = 0; trial < 20000; ++trial) {
    const long long ax = static_cast<long long>(rng.next_below(1u << 26)) - (1 << 25);
    const long long ay = static_cast<long long>(rng.next_below(1u << 26)) - (1 << 25);
    const long long dx = static_cast<long long>(rng.next_below(2000)) - 1000;
    const long long dy = static_cast<long long>(rng.next_below(2000)) - 1000;
    const long long k = static_cast<long long>(rng.next_below(1u << 20));
    const long long m = static_cast<long long>(rng.next_below(1u << 20));
    const long long nudge = static_cast<long long>(rng.next_below(3)) - 1;
    const long long bx = ax + k * dx, by = ay + k * dy;
    const long long cx = ax + m * dx + nudge, cy = ay + m * dy;
    const int want = orient_oracle(ax, ay, bx, by, cx, cy);
    const double got = orientation(
        {static_cast<double>(ax), static_cast<double>(ay)},
        {static_cast<double>(bx), static_cast<double>(by)},
        {static_cast<double>(cx), static_cast<double>(cy)});
    ASSERT_EQ(sign_of(got), want)
        << "a=(" << ax << "," << ay << ") b=(" << bx << "," << by << ") c=(" << cx
        << "," << cy << ")";
  }
}

/// Integer-exact incircle oracle (|coord| <= ~2^20 keeps all terms in
/// __int128).
int incircle_oracle(long long ax, long long ay, long long bx, long long by,
                    long long cx, long long cy, long long dx, long long dy) {
  const __int128 adx = ax - dx, ady = ay - dy;
  const __int128 bdx = bx - dx, bdy = by - dy;
  const __int128 cdx = cx - dx, cdy = cy - dy;
  const __int128 alift = adx * adx + ady * ady;
  const __int128 blift = bdx * bdx + bdy * bdy;
  const __int128 clift = cdx * cdx + cdy * cdy;
  const __int128 det = alift * (bdx * cdy - cdx * bdy) -
                       blift * (adx * cdy - cdx * ady) +
                       clift * (adx * bdy - bdx * ady);
  return det > 0 ? 1 : (det < 0 ? -1 : 0);
}

TEST(ExactPredicates, IncircleMatchesInt128Oracle) {
  // Cocircular and near-cocircular integer quadruples, including points
  // exactly on the circle (oracle 0).
  Rng rng(777);
  for (int trial = 0; trial < 5000; ++trial) {
    const auto coord = [&rng] {
      return static_cast<long long>(rng.next_below(2001)) - 1000;
    };
    const long long ax = coord(), ay = coord(), bx = coord(), by = coord();
    const long long cx = coord(), cy = coord(), dx = coord(), dy = coord();
    const int want = incircle_oracle(ax, ay, bx, by, cx, cy, dx, dy);
    const double got = exact::incircle(
        {static_cast<double>(ax), static_cast<double>(ay)},
        {static_cast<double>(bx), static_cast<double>(by)},
        {static_cast<double>(cx), static_cast<double>(cy)},
        {static_cast<double>(dx), static_cast<double>(dy)});
    ASSERT_EQ(sign_of(got), want) << "trial " << trial;
  }
  // Pinned exactly-cocircular case: 4 points of the circle r^2 = 25.
  EXPECT_EQ(exact::incircle({3, 4}, {5, 0}, {-5, 0}, {0, 5}), 0.0);
  // d strictly inside / outside that circle.
  EXPECT_NE(sign_of(exact::incircle({3, 4}, {5, 0}, {-5, 0}, {0, 4.9})),
            sign_of(exact::incircle({3, 4}, {5, 0}, {-5, 0}, {0, 5.1})));
}

TEST(ExactPredicates, IncircleExtremeMagnitudeRescue) {
  // Coordinates near the overflow threshold force the incircle rescue
  // rescale; sign must survive. Same circle as above scaled by 2^1000
  // (exact power-of-two scaling preserves cocircularity).
  const double s = 0x1p1000;
  EXPECT_EQ(exact::incircle({3 * s, 4 * s}, {5 * s, 0}, {-5 * s, 0}, {0, 5 * s}), 0.0);
  // In/out signs depend on abc's winding; pin them against the
  // small-coordinate evaluation (oracle-verified above) instead of
  // hand-deriving them.
  EXPECT_EQ(sign_of(exact::incircle({3 * s, 4 * s}, {5 * s, 0}, {-5 * s, 0}, {0, 4 * s})),
            sign_of(exact::incircle({3, 4}, {5, 0}, {-5, 0}, {0, 4})));
  EXPECT_EQ(sign_of(exact::incircle({3 * s, 4 * s}, {5 * s, 0}, {-5 * s, 0}, {0, 6 * s})),
            sign_of(exact::incircle({3, 4}, {5, 0}, {-5, 0}, {0, 6})));
}

TEST(ExactPredicates, SlowpathCounterMonotonicAndBumpedByEscalations) {
  const std::uint64_t before = exact::slowpath_calls();
  // Certain fast-path case: no escalation.
  EXPECT_LT(orientation({0, 0}, {1, 0}, {0.5, -1}), 0.0);
  EXPECT_EQ(exact::slowpath_calls(), before);
  // Degenerate case: must escalate at least once.
  EXPECT_EQ(orientation({0, 0}, {1e16, 1e16}, {3, 3}), 0.0);
  EXPECT_GT(exact::slowpath_calls(), before);
}

}  // namespace
}  // namespace sjc::geom
