// Tests for the naive (reference) predicates across geometry type pairs.
#include <gtest/gtest.h>

#include "geom/predicates.hpp"
#include "util/status.hpp"

namespace sjc::geom {
namespace {

Geometry unit_square() {
  return Geometry::polygon({{0, 0}, {4, 0}, {4, 4}, {0, 4}, {0, 0}});
}

Geometry donut() {
  return Geometry::polygon({{0, 0}, {10, 0}, {10, 10}, {0, 10}, {0, 0}},
                           {{{3, 3}, {7, 3}, {7, 7}, {3, 7}, {3, 3}}});
}

// ---------------------------------------------------------------------------
// intersects
// ---------------------------------------------------------------------------

TEST(Intersects, PointPoint) {
  EXPECT_TRUE(intersects_naive(Geometry::point(1, 2), Geometry::point(1, 2)));
  EXPECT_FALSE(intersects_naive(Geometry::point(1, 2), Geometry::point(1, 3)));
}

TEST(Intersects, PointLine) {
  const Geometry l = Geometry::line_string({{0, 0}, {4, 4}});
  EXPECT_TRUE(intersects_naive(Geometry::point(2, 2), l));
  EXPECT_TRUE(intersects_naive(l, Geometry::point(2, 2)));  // symmetric
  EXPECT_FALSE(intersects_naive(Geometry::point(2, 3), l));
}

TEST(Intersects, PointPolygon) {
  EXPECT_TRUE(intersects_naive(Geometry::point(2, 2), unit_square()));
  EXPECT_TRUE(intersects_naive(Geometry::point(0, 2), unit_square()));  // boundary
  EXPECT_FALSE(intersects_naive(Geometry::point(5, 5), unit_square()));
}

TEST(Intersects, PointInHoleIsOutside) {
  EXPECT_FALSE(intersects_naive(Geometry::point(5, 5), donut()));
  EXPECT_TRUE(intersects_naive(Geometry::point(1, 5), donut()));
}

TEST(Intersects, LineLine) {
  const Geometry a = Geometry::line_string({{0, 0}, {4, 4}});
  const Geometry b = Geometry::line_string({{0, 4}, {4, 0}});
  const Geometry c = Geometry::line_string({{10, 10}, {11, 10}});
  EXPECT_TRUE(intersects_naive(a, b));
  EXPECT_FALSE(intersects_naive(a, c));
}

TEST(Intersects, LinePolygonCrossing) {
  const Geometry l = Geometry::line_string({{-1, 2}, {5, 2}});
  EXPECT_TRUE(intersects_naive(l, unit_square()));
  EXPECT_TRUE(intersects_naive(unit_square(), l));
}

TEST(Intersects, LineFullyInsidePolygon) {
  const Geometry l = Geometry::line_string({{1, 1}, {3, 3}});
  EXPECT_TRUE(intersects_naive(l, unit_square()));
}

TEST(Intersects, LineInsideHoleDoesNotIntersect) {
  const Geometry l = Geometry::line_string({{4, 4}, {6, 6}});
  EXPECT_FALSE(intersects_naive(l, donut()));
}

TEST(Intersects, LineCrossingHoleBoundary) {
  const Geometry l = Geometry::line_string({{5, 5}, {5, 9}});
  EXPECT_TRUE(intersects_naive(l, donut()));
}

TEST(Intersects, PolygonPolygonOverlap) {
  const Geometry a = unit_square();
  const Geometry b = Geometry::polygon({{2, 2}, {6, 2}, {6, 6}, {2, 6}, {2, 2}});
  EXPECT_TRUE(intersects_naive(a, b));
}

TEST(Intersects, PolygonContainedInPolygon) {
  const Geometry inner = Geometry::polygon({{1, 1}, {2, 1}, {2, 2}, {1, 2}, {1, 1}});
  EXPECT_TRUE(intersects_naive(inner, unit_square()));
  EXPECT_TRUE(intersects_naive(unit_square(), inner));
}

TEST(Intersects, PolygonInsideHoleDisjoint) {
  const Geometry in_hole = Geometry::polygon({{4, 4}, {6, 4}, {6, 6}, {4, 6}, {4, 4}});
  EXPECT_FALSE(intersects_naive(in_hole, donut()));
  EXPECT_FALSE(intersects_naive(donut(), in_hole));
}

TEST(Intersects, PolygonsTouchingAtEdge) {
  const Geometry a = unit_square();
  const Geometry b = Geometry::polygon({{4, 0}, {8, 0}, {8, 4}, {4, 4}, {4, 0}});
  EXPECT_TRUE(intersects_naive(a, b));
}

TEST(Intersects, MultiGeometryAnyPartCounts) {
  const Geometry m = Geometry::multi_polygon(
      {Polygon{{{20, 20}, {21, 20}, {21, 21}, {20, 21}, {20, 20}}, {}},
       Polygon{{{1, 1}, {2, 1}, {2, 2}, {1, 2}, {1, 1}}, {}}});
  EXPECT_TRUE(intersects_naive(m, unit_square()));
  EXPECT_TRUE(intersects_naive(unit_square(), m));
}

TEST(Intersects, EnvelopeDisjointShortCircuit) {
  const Geometry a = Geometry::line_string({{0, 0}, {1, 1}});
  const Geometry b = Geometry::line_string({{100, 100}, {101, 101}});
  EXPECT_FALSE(intersects_naive(a, b));
}

// ---------------------------------------------------------------------------
// contains (covers semantics)
// ---------------------------------------------------------------------------

TEST(Contains, PolygonPoint) {
  EXPECT_TRUE(contains_naive(unit_square(), Geometry::point(2, 2)));
  EXPECT_TRUE(contains_naive(unit_square(), Geometry::point(0, 0)));  // corner
  EXPECT_FALSE(contains_naive(unit_square(), Geometry::point(5, 5)));
}

TEST(Contains, DonutDoesNotContainHolePoint) {
  EXPECT_FALSE(contains_naive(donut(), Geometry::point(5, 5)));
  EXPECT_TRUE(contains_naive(donut(), Geometry::point(3, 5)));  // hole boundary
}

TEST(Contains, PolygonLine) {
  EXPECT_TRUE(contains_naive(unit_square(), Geometry::line_string({{1, 1}, {3, 3}})));
  EXPECT_FALSE(contains_naive(unit_square(), Geometry::line_string({{1, 1}, {9, 9}})));
  // On-boundary line is covered.
  EXPECT_TRUE(contains_naive(unit_square(), Geometry::line_string({{0, 0}, {4, 0}})));
}

TEST(Contains, LineThroughHoleNotContained) {
  EXPECT_FALSE(contains_naive(donut(), Geometry::line_string({{1, 5}, {9, 5}})));
}

TEST(Contains, PolygonPolygon) {
  const Geometry inner = Geometry::polygon({{1, 1}, {3, 1}, {3, 3}, {1, 3}, {1, 1}});
  EXPECT_TRUE(contains_naive(unit_square(), inner));
  EXPECT_FALSE(contains_naive(inner, unit_square()));
}

TEST(Contains, NonArealLeftThrows) {
  EXPECT_THROW(contains_naive(Geometry::point(0, 0), Geometry::point(0, 0)),
               InvalidArgument);
  EXPECT_THROW(
      contains_naive(Geometry::line_string({{0, 0}, {1, 1}}), Geometry::point(0, 0)),
      InvalidArgument);
}

TEST(Contains, MultiPolygonContainsAcrossParts) {
  const Geometry m = Geometry::multi_polygon(
      {Polygon{{{0, 0}, {4, 0}, {4, 4}, {0, 4}, {0, 0}}, {}},
       Polygon{{{10, 10}, {14, 10}, {14, 14}, {10, 14}, {10, 10}}, {}}});
  EXPECT_TRUE(contains_naive(m, Geometry::point(2, 2)));
  EXPECT_TRUE(contains_naive(m, Geometry::point(12, 12)));
  EXPECT_FALSE(contains_naive(m, Geometry::point(7, 7)));
}

// ---------------------------------------------------------------------------
// distance / within_distance
// ---------------------------------------------------------------------------

TEST(Distance, IntersectingIsZero) {
  EXPECT_EQ(distance_naive(Geometry::point(2, 2), unit_square()), 0.0);
}

TEST(Distance, PointToPolygonBoundary) {
  EXPECT_DOUBLE_EQ(distance_naive(Geometry::point(7, 2), unit_square()), 3.0);
}

TEST(Distance, PointToLine) {
  const Geometry l = Geometry::line_string({{0, 0}, {10, 0}});
  EXPECT_DOUBLE_EQ(distance_naive(Geometry::point(5, 4), l), 4.0);
}

TEST(Distance, LineToLine) {
  const Geometry a = Geometry::line_string({{0, 0}, {10, 0}});
  const Geometry b = Geometry::line_string({{0, 3}, {10, 3}});
  EXPECT_DOUBLE_EQ(distance_naive(a, b), 3.0);
}

TEST(Distance, PolygonToPolygon) {
  const Geometry a = unit_square();
  const Geometry b = Geometry::polygon({{7, 0}, {9, 0}, {9, 4}, {7, 4}, {7, 0}});
  EXPECT_DOUBLE_EQ(distance_naive(a, b), 3.0);
}

TEST(WithinDistance, ThresholdSemantics) {
  const Geometry p = Geometry::point(7, 2);
  EXPECT_TRUE(within_distance_naive(p, unit_square(), 3.0));   // exactly at
  EXPECT_TRUE(within_distance_naive(p, unit_square(), 3.5));
  EXPECT_FALSE(within_distance_naive(p, unit_square(), 2.9));
}

TEST(WithinDistance, NegativeDistanceThrows) {
  EXPECT_THROW(within_distance_naive(Geometry::point(0, 0), unit_square(), -1.0),
               InvalidArgument);
}

TEST(WithinDistance, EnvelopeEarlyOut) {
  const Geometry far = Geometry::point(1000, 1000);
  EXPECT_FALSE(within_distance_naive(far, unit_square(), 10.0));
}

}  // namespace
}  // namespace sjc::geom
