// Tests for the spatial index structures (STR tree, dynamic R-tree, grid,
// quadtree): unit cases plus a shared property harness checking every index
// against brute force on randomized workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "index/grid_index.hpp"
#include "util/status.hpp"
#include "index/quadtree.hpp"
#include "index/rtree_dynamic.hpp"
#include "index/str_tree.hpp"
#include "util/rng.hpp"

namespace sjc::index {
namespace {

std::vector<IndexEntry> random_entries(Rng& rng, std::size_t n, double extent,
                                       double max_size) {
  std::vector<IndexEntry> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const double x = rng.uniform(0, extent);
    const double y = rng.uniform(0, extent);
    const double w = rng.uniform(0, max_size);
    const double h = rng.uniform(0, max_size);
    out.push_back({geom::Envelope(x, y, x + w, y + h), i});
  }
  return out;
}

std::vector<std::uint32_t> brute_force(const std::vector<IndexEntry>& entries,
                                       const geom::Envelope& q) {
  std::vector<std::uint32_t> out;
  for (const auto& e : entries) {
    if (e.env.intersects(q)) out.push_back(e.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// STR tree unit tests
// ---------------------------------------------------------------------------

TEST(StrTree, EmptyTree) {
  const StrTree tree({});
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.query_ids(geom::Envelope(0, 0, 1, 1)).empty());
}

TEST(StrTree, SingleEntry) {
  const StrTree tree({{geom::Envelope(1, 1, 2, 2), 7}});
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_EQ(tree.query_ids(geom::Envelope(0, 0, 3, 3)), std::vector<std::uint32_t>{7});
  EXPECT_TRUE(tree.query_ids(geom::Envelope(5, 5, 6, 6)).empty());
}

TEST(StrTree, BoundsCoverAllEntries) {
  Rng rng(1);
  const auto entries = random_entries(rng, 500, 100, 5);
  const StrTree tree(entries);
  for (const auto& e : entries) {
    EXPECT_TRUE(tree.bounds().contains(e.env));
  }
}

TEST(StrTree, HeightGrowsLogarithmically) {
  Rng rng(2);
  const StrTree small(random_entries(rng, 10, 100, 1));
  const StrTree large(random_entries(rng, 10000, 100, 1));
  EXPECT_LE(small.height(), 2u);
  EXPECT_LE(large.height(), 5u);
  EXPECT_GT(large.height(), small.height());
}

TEST(StrTree, RejectsTinyFanout) {
  EXPECT_THROW(StrTree({}, 1), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Dynamic R-tree unit tests
// ---------------------------------------------------------------------------

TEST(DynamicRTree, EmptyTree) {
  const DynamicRTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.query_ids(geom::Envelope(0, 0, 1, 1)).empty());
}

TEST(DynamicRTree, InsertAndQuery) {
  DynamicRTree tree;
  tree.insert(geom::Envelope(0, 0, 1, 1), 1);
  tree.insert(geom::Envelope(5, 5, 6, 6), 2);
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_EQ(tree.query_ids(geom::Envelope(0.5, 0.5, 0.6, 0.6)),
            std::vector<std::uint32_t>{1});
}

TEST(DynamicRTree, SplitsKeepAllEntries) {
  DynamicRTree tree(8);
  Rng rng(3);
  const auto entries = random_entries(rng, 1000, 50, 2);
  for (const auto& e : entries) tree.insert(e.env, e.id);
  EXPECT_EQ(tree.size(), 1000u);
  EXPECT_GT(tree.height(), 1u);
  // Whole-extent query returns everything exactly once.
  auto all = tree.query_ids(tree.bounds());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all.size(), 1000u);
  EXPECT_EQ(all.front(), 0u);
  EXPECT_EQ(all.back(), 999u);
}

TEST(DynamicRTree, RejectsTinyNodeCapacity) {
  EXPECT_THROW(DynamicRTree(3), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Grid index unit tests
// ---------------------------------------------------------------------------

TEST(GridIndex, DeduplicatesSpanningEntries) {
  // One big envelope covering many cells must be reported once.
  std::vector<IndexEntry> entries = {{geom::Envelope(0, 0, 99, 99), 0}};
  for (std::uint32_t i = 1; i < 50; ++i) {
    entries.push_back({geom::Envelope(i, i, i + 0.5, i + 0.5), i});
  }
  const GridIndex grid(entries, 8, 8);
  int count = 0;
  grid.query(geom::Envelope(0, 0, 99, 99), [&](std::uint32_t) { ++count; });
  EXPECT_EQ(count, 50);
}

TEST(GridIndex, TargetOccupancyPicksReasonableGrid) {
  Rng rng(4);
  const GridIndex grid =
      GridIndex::with_target_occupancy(random_entries(rng, 640, 100, 1), 10.0);
  EXPECT_GE(grid.cols() * grid.rows(), 32u);
}

TEST(GridIndex, RejectsZeroDimensions) {
  EXPECT_THROW(GridIndex({}, 0, 4), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Quadtree unit tests
// ---------------------------------------------------------------------------

TEST(Quadtree, EmptyTree) {
  const Quadtree tree({}, geom::Envelope(0, 0, 1, 1));
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.query_ids(geom::Envelope(0, 0, 1, 1)).empty());
}

TEST(Quadtree, SubdividesUnderLoad) {
  Rng rng(5);
  const Quadtree tree(random_entries(rng, 2000, 100, 0.5), geom::Envelope(0, 0, 100, 100),
                      8);
  EXPECT_GT(tree.node_count(), 5u);
  EXPECT_EQ(tree.size(), 2000u);
}

TEST(Quadtree, StraddlingEntriesPinnedNotLost) {
  std::vector<IndexEntry> entries;
  // Entry crossing the root center line can never sink into a child.
  entries.push_back({geom::Envelope(49, 49, 51, 51), 0});
  for (std::uint32_t i = 1; i < 100; ++i) {
    entries.push_back({geom::Envelope(i * 0.5, 1, i * 0.5 + 0.2, 1.2), i});
  }
  const Quadtree tree(entries, geom::Envelope(0, 0, 100, 100), 4);
  const auto hits = tree.query_ids(geom::Envelope(50, 50, 50.5, 50.5));
  EXPECT_EQ(hits, std::vector<std::uint32_t>{0});
}

// ---------------------------------------------------------------------------
// Property: every index answers exactly like brute force.
// ---------------------------------------------------------------------------

struct IndexCase {
  const char* name;
  std::function<std::unique_ptr<SpatialIndex>(std::vector<IndexEntry>)> build;
};

class IndexEquivalence : public ::testing::TestWithParam<IndexCase> {};

TEST_P(IndexEquivalence, MatchesBruteForceOnRandomWorkloads) {
  Rng rng(0xfeed);
  for (const std::size_t n : {0ULL, 1ULL, 7ULL, 100ULL, 2000ULL}) {
    const auto entries = random_entries(rng, n, 100, 4);
    const auto idx = GetParam().build(entries);
    EXPECT_EQ(idx->size(), n);
    for (int q = 0; q < 100; ++q) {
      const double x = rng.uniform(-10, 110);
      const double y = rng.uniform(-10, 110);
      const geom::Envelope query(x, y, x + rng.uniform(0, 30), y + rng.uniform(0, 30));
      auto got = idx->query_ids(query);
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, brute_force(entries, query)) << GetParam().name << " n=" << n;
    }
  }
}

TEST_P(IndexEquivalence, PointQueries) {
  Rng rng(0xbeef);
  const auto entries = random_entries(rng, 500, 50, 3);
  const auto idx = GetParam().build(entries);
  for (int q = 0; q < 200; ++q) {
    const geom::Envelope query =
        geom::Envelope::of_point(rng.uniform(0, 55), rng.uniform(0, 55));
    auto got = idx->query_ids(query);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, brute_force(entries, query));
  }
}

TEST_P(IndexEquivalence, ReportsPositiveSizeBytes) {
  Rng rng(7);
  const auto idx = GetParam().build(random_entries(rng, 100, 10, 1));
  EXPECT_GT(idx->size_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexes, IndexEquivalence,
    ::testing::Values(
        IndexCase{"str",
                  [](std::vector<IndexEntry> e) -> std::unique_ptr<SpatialIndex> {
                    return std::make_unique<StrTree>(std::move(e));
                  }},
        IndexCase{"str_fanout4",
                  [](std::vector<IndexEntry> e) -> std::unique_ptr<SpatialIndex> {
                    return std::make_unique<StrTree>(std::move(e), 4);
                  }},
        IndexCase{"dynamic_rtree",
                  [](std::vector<IndexEntry> e) -> std::unique_ptr<SpatialIndex> {
                    auto tree = std::make_unique<DynamicRTree>();
                    for (const auto& entry : e) tree->insert(entry.env, entry.id);
                    return tree;
                  }},
        IndexCase{"dynamic_rtree_cap8",
                  [](std::vector<IndexEntry> e) -> std::unique_ptr<SpatialIndex> {
                    auto tree = std::make_unique<DynamicRTree>(8);
                    for (const auto& entry : e) tree->insert(entry.env, entry.id);
                    return tree;
                  }},
        IndexCase{"grid",
                  [](std::vector<IndexEntry> e) -> std::unique_ptr<SpatialIndex> {
                    return std::make_unique<GridIndex>(std::move(e), 16, 16);
                  }},
        IndexCase{"grid_occupancy",
                  [](std::vector<IndexEntry> e) -> std::unique_ptr<SpatialIndex> {
                    return std::make_unique<GridIndex>(
                        GridIndex::with_target_occupancy(std::move(e)));
                  }},
        IndexCase{"quadtree",
                  [](std::vector<IndexEntry> e) -> std::unique_ptr<SpatialIndex> {
                    return std::make_unique<Quadtree>(std::move(e),
                                                      geom::Envelope(0, 0, 100, 100));
                  }}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace sjc::index
