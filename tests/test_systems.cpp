// Integration tests for the three simulated systems: result agreement
// across systems/configurations, failure gates (broken pipe / OOM), and
// report/breakdown consistency.
#include <gtest/gtest.h>

#include "core/experiments.hpp"
#include "core/spatial_join.hpp"
#include <set>

#include "mapreduce/streaming.hpp"
#include "systems/hadoopgis/hadoop_gis.hpp"
#include "systems/spatialhadoop/spatial_hadoop.hpp"
#include "systems/spatialspark/spatial_spark.hpp"
#include "workload/generators.hpp"

namespace sjc {
namespace {

struct Workbench {
  workload::Dataset points;
  workload::Dataset polys;
  workload::Dataset lines_a;
  workload::Dataset lines_b;
  core::ExecutionConfig exec;

  static const Workbench& instance() {
    static const Workbench bench = [] {
      Workbench w;
      workload::WorkloadConfig wc;
      // 2e-4 sits inside the verified-stable band of the failure gates:
      // small enough to run in milliseconds, large enough that per-task
      // volumes are not dominated by lumpiness artifacts.
      wc.scale = 2e-4;
      w.points = workload::generate(workload::DatasetId::kTaxi1m, wc);
      w.polys = workload::generate(workload::DatasetId::kNycb, wc);
      w.lines_a = workload::generate(workload::DatasetId::kEdges01, wc);
      w.lines_b = workload::generate(workload::DatasetId::kLinearwater01, wc);
      w.exec.cluster = cluster::ClusterSpec::workstation();
      w.exec.data_scale = 1.0 / wc.scale;
      w.exec.collect_pairs = true;
      return w;
    }();
    return bench;
  }
};

std::vector<core::JoinPair> sorted_pairs(core::RunReport report) {
  std::sort(report.pairs.begin(), report.pairs.end());
  return report.pairs;
}

// HadoopGIS with the broken-pipe gate disabled: the agreement tests verify
// result equality across arbitrary configurations, some of which sit near
// the (intentional) WS pipe limit; the gate has its own dedicated tests.
core::RunReport run_hadoop_gis_ungated(const workload::Dataset& left,
                                       const workload::Dataset& right,
                                       const core::JoinQueryConfig& query,
                                       const core::ExecutionConfig& exec) {
  systems::HadoopGisConfig config;
  config.pipe_capacity_fraction = 0.0;
  return systems::run_hadoop_gis(left, right, query, exec, config);
}

// ---------------------------------------------------------------------------
// Cross-system agreement under varying configurations
// ---------------------------------------------------------------------------

struct AgreementCase {
  std::string name;
  core::JoinQueryConfig query;
};

class SystemsAgree : public ::testing::TestWithParam<AgreementCase> {};

TEST_P(SystemsAgree, PointInPolygonJoin) {
  const auto& w = Workbench::instance();
  core::JoinQueryConfig query = GetParam().query;
  query.predicate = core::JoinPredicate::kWithin;

  const auto sh = core::run_spatial_join(core::SystemKind::kSpatialHadoopSim, w.points,
                                         w.polys, query, w.exec);
  ASSERT_TRUE(sh.success) << sh.failure_reason;
  EXPECT_GT(sh.result_count, 0u);
  // Every point lies in at most one block, so pairs <= points.
  EXPECT_LE(sh.result_count, w.points.size());

  const auto ss = core::run_spatial_join(core::SystemKind::kSpatialSparkSim, w.points,
                                         w.polys, query, w.exec);
  ASSERT_TRUE(ss.success) << ss.failure_reason;
  const auto hg = run_hadoop_gis_ungated(w.points, w.polys, query, w.exec);
  ASSERT_TRUE(hg.success) << hg.failure_reason;

  EXPECT_EQ(sorted_pairs(sh), sorted_pairs(ss));
  EXPECT_EQ(sorted_pairs(sh), sorted_pairs(hg));
}

TEST_P(SystemsAgree, PolylineIntersectionJoin) {
  const auto& w = Workbench::instance();
  core::JoinQueryConfig query = GetParam().query;
  query.predicate = core::JoinPredicate::kIntersects;

  const auto sh = core::run_spatial_join(core::SystemKind::kSpatialHadoopSim, w.lines_a,
                                         w.lines_b, query, w.exec);
  ASSERT_TRUE(sh.success) << sh.failure_reason;
  EXPECT_GT(sh.result_count, 0u);
  const auto ss = core::run_spatial_join(core::SystemKind::kSpatialSparkSim, w.lines_a,
                                         w.lines_b, query, w.exec);
  ASSERT_TRUE(ss.success) << ss.failure_reason;
  const auto hg = run_hadoop_gis_ungated(w.lines_a, w.lines_b, query, w.exec);
  ASSERT_TRUE(hg.success) << hg.failure_reason;

  EXPECT_EQ(sorted_pairs(sh), sorted_pairs(ss));
  EXPECT_EQ(sorted_pairs(sh), sorted_pairs(hg));
}

std::vector<AgreementCase> agreement_cases() {
  std::vector<AgreementCase> cases;
  {
    AgreementCase c;
    c.name = "defaults";
    cases.push_back(c);
  }
  {
    AgreementCase c;
    c.name = "grid_partitioner";
    c.query.partitioner = partition::PartitionerKind::kFixedGrid;
    cases.push_back(c);
  }
  {
    AgreementCase c;
    c.name = "bsp_partitioner";
    c.query.partitioner = partition::PartitionerKind::kBsp;
    cases.push_back(c);
  }
  {
    AgreementCase c;
    c.name = "few_partitions";
    c.query.target_partitions = 5;
    cases.push_back(c);
  }
  {
    AgreementCase c;
    c.name = "many_partitions";
    c.query.target_partitions = 400;
    cases.push_back(c);
  }
  {
    AgreementCase c;
    c.name = "plane_sweep_everywhere";
    c.query.local_algorithm = index::LocalJoinAlgorithm::kPlaneSweep;
    cases.push_back(c);
  }
  {
    AgreementCase c;
    c.name = "sync_traversal_everywhere";
    c.query.local_algorithm = index::LocalJoinAlgorithm::kSyncTraversal;
    cases.push_back(c);
  }
  {
    AgreementCase c;
    c.name = "high_sample_rate";
    c.query.sample_rate = 0.5;
    cases.push_back(c);
  }
  {
    AgreementCase c;
    c.name = "other_seed";
    c.query.seed = 12345;
    cases.push_back(c);
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Configs, SystemsAgree, ::testing::ValuesIn(agreement_cases()),
                         [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Cross-cluster invariance: the pair set must not depend on the cluster.
// ---------------------------------------------------------------------------

TEST(Systems, SpatialHadoopResultIndependentOfCluster) {
  const auto& w = Workbench::instance();
  core::JoinQueryConfig query;
  query.predicate = core::JoinPredicate::kWithin;
  core::ExecutionConfig exec = w.exec;
  const auto ws = core::run_spatial_join(core::SystemKind::kSpatialHadoopSim, w.points,
                                         w.polys, query, exec);
  exec.cluster = cluster::ClusterSpec::ec2(6);
  const auto ec2 = core::run_spatial_join(core::SystemKind::kSpatialHadoopSim, w.points,
                                          w.polys, query, exec);
  ASSERT_TRUE(ws.success && ec2.success);
  EXPECT_EQ(sorted_pairs(ws), sorted_pairs(ec2));
}

// ---------------------------------------------------------------------------
// Broadcast join variant agrees with the partition-based join.
// ---------------------------------------------------------------------------

TEST(Systems, BroadcastJoinAgreesWithPartitionJoin) {
  const auto& w = Workbench::instance();
  core::JoinQueryConfig query;
  query.predicate = core::JoinPredicate::kWithin;

  systems::SpatialSparkConfig broadcast_cfg;
  broadcast_cfg.broadcast_join = true;
  const auto bc = systems::run_spatial_spark(w.points, w.polys, query, w.exec,
                                             broadcast_cfg);
  ASSERT_TRUE(bc.success) << bc.failure_reason;
  const auto pt = systems::run_spatial_spark(w.points, w.polys, query, w.exec);
  ASSERT_TRUE(pt.success) << pt.failure_reason;
  EXPECT_EQ(sorted_pairs(bc), sorted_pairs(pt));
}

// ---------------------------------------------------------------------------
// Failure gates
// ---------------------------------------------------------------------------

TEST(Systems, HadoopGisBreaksPipesOnFullWorkload) {
  workload::WorkloadConfig wc;
  wc.scale = 5e-5;
  const auto taxi = workload::generate(workload::DatasetId::kTaxi, wc);
  const auto nycb = workload::generate(workload::DatasetId::kNycb, wc);
  core::JoinQueryConfig query;
  query.predicate = core::JoinPredicate::kWithin;
  core::ExecutionConfig exec;
  exec.data_scale = 1.0 / wc.scale;
  const auto report =
      core::run_spatial_join(core::SystemKind::kHadoopGisSim, taxi, nycb, query, exec);
  EXPECT_FALSE(report.success);
  EXPECT_NE(report.failure_reason.find("pipe"), std::string::npos);
  // Failed runs still report what they measured up to the failure.
  EXPECT_FALSE(report.metrics.phases().empty());
}

TEST(Systems, SpatialSparkOomsOnSmallCluster) {
  workload::WorkloadConfig wc;
  wc.scale = 5e-5;
  const auto taxi = workload::generate(workload::DatasetId::kTaxi, wc);
  const auto nycb = workload::generate(workload::DatasetId::kNycb, wc);
  core::JoinQueryConfig query;
  query.predicate = core::JoinPredicate::kWithin;
  core::ExecutionConfig exec;
  exec.data_scale = 1.0 / wc.scale;
  exec.cluster = cluster::ClusterSpec::ec2(6);
  const auto report =
      core::run_spatial_join(core::SystemKind::kSpatialSparkSim, taxi, nycb, query, exec);
  EXPECT_FALSE(report.success);
  EXPECT_NE(report.failure_reason.find("memory"), std::string::npos);
  EXPECT_GT(report.peak_memory_bytes, 0u);
}

TEST(Systems, SpatialHadoopNeverFails) {
  // Robustness winner: completes the full workload on the smallest cluster.
  workload::WorkloadConfig wc;
  wc.scale = 5e-5;
  const auto taxi = workload::generate(workload::DatasetId::kTaxi, wc);
  const auto nycb = workload::generate(workload::DatasetId::kNycb, wc);
  core::JoinQueryConfig query;
  query.predicate = core::JoinPredicate::kWithin;
  core::ExecutionConfig exec;
  exec.data_scale = 1.0 / wc.scale;
  exec.cluster = cluster::ClusterSpec::ec2(6);
  const auto report =
      core::run_spatial_join(core::SystemKind::kSpatialHadoopSim, taxi, nycb, query, exec);
  EXPECT_TRUE(report.success) << report.failure_reason;
}

// ---------------------------------------------------------------------------
// Report consistency
// ---------------------------------------------------------------------------

TEST(Systems, BreakdownSumsToTotal) {
  const auto& w = Workbench::instance();
  core::JoinQueryConfig query;
  query.predicate = core::JoinPredicate::kWithin;
  for (const auto kind :
       {core::SystemKind::kHadoopGisSim, core::SystemKind::kSpatialHadoopSim}) {
    const auto r = core::run_spatial_join(kind, w.points, w.polys, query, w.exec);
    ASSERT_TRUE(r.success);
    EXPECT_NEAR(r.index_a_seconds + r.index_b_seconds + r.join_seconds, r.total_seconds,
                1e-6)
        << core::system_kind_name(kind);
    EXPECT_GT(r.index_a_seconds, 0.0);
    EXPECT_GT(r.index_b_seconds, 0.0);
    EXPECT_GT(r.join_seconds, 0.0);
    EXPECT_NEAR(r.metrics.total_seconds(), r.total_seconds, 1e-6);
  }
}

TEST(Systems, SparkReportsOnlyTotals) {
  const auto& w = Workbench::instance();
  core::JoinQueryConfig query;
  query.predicate = core::JoinPredicate::kWithin;
  const auto r = core::run_spatial_join(core::SystemKind::kSpatialSparkSim, w.points,
                                        w.polys, query, w.exec);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(std::isnan(r.index_a_seconds));
  EXPECT_TRUE(std::isnan(r.join_seconds));
  EXPECT_GT(r.total_seconds, 0.0);
}

TEST(Systems, HashMatchesPairsWhenCollected) {
  const auto& w = Workbench::instance();
  core::JoinQueryConfig query;
  query.predicate = core::JoinPredicate::kWithin;
  const auto r = core::run_spatial_join(core::SystemKind::kSpatialHadoopSim, w.points,
                                        w.polys, query, w.exec);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.result_hash, core::hash_pairs_unordered(r.pairs));
  EXPECT_EQ(r.result_count, r.pairs.size());
}

TEST(Systems, CollectPairsOffStillCountsAndHashes) {
  const auto& w = Workbench::instance();
  core::JoinQueryConfig query;
  query.predicate = core::JoinPredicate::kWithin;
  core::ExecutionConfig exec = w.exec;
  exec.collect_pairs = false;
  const auto with = core::run_spatial_join(core::SystemKind::kSpatialSparkSim, w.points,
                                           w.polys, query, w.exec);
  const auto without = core::run_spatial_join(core::SystemKind::kSpatialSparkSim,
                                              w.points, w.polys, query, exec);
  ASSERT_TRUE(with.success && without.success);
  EXPECT_EQ(with.result_count, without.result_count);
  EXPECT_EQ(with.result_hash, without.result_hash);
  EXPECT_TRUE(without.pairs.empty());
}

TEST(Systems, WithinDistanceJoinRunsEndToEnd) {
  // The paper's motivating "taxi to nearest road" workload, as an extension.
  const auto& w = Workbench::instance();
  core::JoinQueryConfig query;
  query.predicate = core::JoinPredicate::kWithinDistance;
  query.within_distance = 250.0;  // meters
  const auto sh = core::run_spatial_join(core::SystemKind::kSpatialHadoopSim, w.points,
                                         w.lines_a, query, w.exec);
  ASSERT_TRUE(sh.success) << sh.failure_reason;
  EXPECT_GT(sh.result_count, 0u);
  const auto ss = core::run_spatial_join(core::SystemKind::kSpatialSparkSim, w.points,
                                         w.lines_a, query, w.exec);
  ASSERT_TRUE(ss.success);
  EXPECT_EQ(sh.result_hash, ss.result_hash);
}

// ---------------------------------------------------------------------------
// Experiment registry
// ---------------------------------------------------------------------------

TEST(Systems, CountersArePopulated) {
  const auto& w = Workbench::instance();
  core::JoinQueryConfig query;
  query.predicate = core::JoinPredicate::kWithin;
  const auto sh = core::run_spatial_join(core::SystemKind::kSpatialHadoopSim, w.points,
                                         w.polys, query, w.exec);
  ASSERT_TRUE(sh.success);
  // Both datasets assigned; result pairs counted.
  EXPECT_EQ(sh.counters.get("partition.records"), w.points.size() + w.polys.size());
  EXPECT_GE(sh.counters.get("partition.assignments"),
            sh.counters.get("partition.records"));
  EXPECT_EQ(sh.counters.get("join.result_pairs"), sh.result_count);
  EXPECT_GT(sh.counters.get("join.partition_pairs"), 0u);
  // SpatialHadoop refines on the Prepared engine, so the run-scoped bind()
  // cache must have been consulted and (with overlap-duplicated features
  // across partition pairs) have served hits.
  EXPECT_GT(sh.counters.get("join.prepared_cache_hits"), 0u);
  EXPECT_GT(sh.counters.get("join.prepared_cache_misses"), 0u);
  // Every exact test is classified by the adaptive predicate's outcome.
  EXPECT_GT(sh.counters.get("refine.exact_tests"), 0u);
  EXPECT_EQ(sh.counters.get("refine.exact_fastpath") +
                sh.counters.get("refine.exact_slowpath"),
            sh.counters.get("refine.exact_tests"));

  const auto ss = core::run_spatial_join(core::SystemKind::kSpatialSparkSim, w.points,
                                         w.polys, query, w.exec);
  ASSERT_TRUE(ss.success);
  EXPECT_GT(ss.counters.get("join.prepared_cache_hits"), 0u);
  EXPECT_GT(ss.counters.get("refine.exact_tests"), 0u);
  EXPECT_EQ(ss.counters.get("refine.exact_fastpath") +
                ss.counters.get("refine.exact_slowpath"),
            ss.counters.get("refine.exact_tests"));

  const auto hg = run_hadoop_gis_ungated(w.points, w.polys, query, w.exec);
  ASSERT_TRUE(hg.success);
  // The sort-unique dedup can only shrink the pair lines.
  EXPECT_GE(hg.counters.get("join.pair_lines_before_dedup"),
            hg.counters.get("join.pair_lines_after_dedup"));
  EXPECT_EQ(hg.counters.get("join.pair_lines_after_dedup"), hg.result_count);
  // HadoopGIS refines on the Simple (GEOS-analog) engine: the cache must
  // stay inert or the measured engine gap would be corrupted.
  EXPECT_EQ(hg.counters.get("join.prepared_cache_hits"), 0u);
  EXPECT_EQ(hg.counters.get("join.prepared_cache_misses"), 0u);
  EXPECT_GT(hg.counters.get("refine.exact_tests"), 0u);
  EXPECT_EQ(hg.counters.get("refine.exact_fastpath") +
                hg.counters.get("refine.exact_slowpath"),
            hg.counters.get("refine.exact_tests"));
}

TEST(Experiments, RegistryShape) {
  EXPECT_EQ(core::full_experiments().size(), 2u);
  EXPECT_EQ(core::sample_experiments().size(), 2u);
  EXPECT_EQ(core::full_experiments()[0].id, "taxi-nycb");
  EXPECT_EQ(core::paper_cluster_configs().size(), 4u);
  EXPECT_EQ(core::paper_cluster_configs()[0].name, "WS");
}

}  // namespace
}  // namespace sjc

namespace sjc {
namespace {

TEST(Systems, ResultsDeterministicAcrossRepeatedRuns) {
  const auto& w = Workbench::instance();
  core::JoinQueryConfig query;
  query.predicate = core::JoinPredicate::kWithin;
  for (const auto kind :
       {core::SystemKind::kHadoopGisSim, core::SystemKind::kSpatialHadoopSim,
        core::SystemKind::kSpatialSparkSim}) {
    const auto a = core::run_spatial_join(kind, w.points, w.polys, query, w.exec);
    const auto b = core::run_spatial_join(kind, w.points, w.polys, query, w.exec);
    ASSERT_TRUE(a.success && b.success) << core::system_kind_name(kind);
    EXPECT_EQ(a.result_hash, b.result_hash);
    EXPECT_EQ(a.result_count, b.result_count);
    // The executed phase structure is identical too (timings may differ by
    // real measurement noise, names and task counts may not).
    ASSERT_EQ(a.metrics.phases().size(), b.metrics.phases().size());
    for (std::size_t i = 0; i < a.metrics.phases().size(); ++i) {
      EXPECT_EQ(a.metrics.phases()[i].name, b.metrics.phases()[i].name);
      EXPECT_EQ(a.metrics.phases()[i].task_count, b.metrics.phases()[i].task_count);
      EXPECT_EQ(a.metrics.phases()[i].bytes_read, b.metrics.phases()[i].bytes_read);
    }
  }
}

TEST(Systems, UserCodeErrorsPropagateNotSwallowed) {
  // A malformed record in the streaming pipeline is a bug, not a simulated
  // infrastructure failure: it must throw, not come back as a RunReport.
  mapreduce::StreamingSpec bad;
  bad.name = "bad";
  bad.map = [](const std::string&, std::vector<std::string>&) {
    throw ParseError("boom");
  };
  bad.reduce = [](const std::vector<std::string>&, std::vector<std::string>&) {};
  cluster::RunMetrics metrics;
  dfs::SimDfs fs(dfs::DfsConfig{});
  const auto spec = cluster::ClusterSpec::workstation();
  mapreduce::MrContext ctx{&spec, 1000.0, &fs, &metrics, nullptr};
  EXPECT_THROW(mapreduce::run_streaming(ctx, bad, {{"line"}}), ParseError);
}

}  // namespace
}  // namespace sjc

namespace sjc {
namespace {

TEST(Systems, WithinDistanceMatchesBruteForce) {
  // The epsilon-join must find EXACTLY the pairs within distance d, across
  // partition boundaries (the envelope-expansion machinery under test).
  workload::WorkloadConfig wc;
  wc.scale = 5e-5;
  const auto points = workload::generate(workload::DatasetId::kTaxi1m, wc);
  const auto roads = workload::generate(workload::DatasetId::kEdges01, wc);

  core::JoinQueryConfig query;
  query.predicate = core::JoinPredicate::kWithinDistance;
  query.within_distance = 300.0;
  query.target_partitions = 64;  // force many partition boundaries
  core::ExecutionConfig exec;
  exec.cluster = cluster::ClusterSpec::workstation();
  exec.data_scale = 1.0 / wc.scale;
  exec.collect_pairs = true;

  const auto report = core::run_spatial_join(core::SystemKind::kSpatialHadoopSim,
                                             points, roads, query, exec);
  ASSERT_TRUE(report.success);

  std::set<core::JoinPair> got(report.pairs.begin(), report.pairs.end());
  std::set<core::JoinPair> expected;
  const auto& engine = geom::GeometryEngine::prepared();
  for (const auto& p : points.features()) {
    for (const auto& r : roads.features()) {
      if (p.geometry.envelope().distance(r.geometry.envelope()) > 300.0) continue;
      if (engine.distance(p.geometry, r.geometry) <= 300.0) {
        expected.insert({p.id, r.id});
      }
    }
  }
  EXPECT_EQ(got, expected);
  EXPECT_GT(expected.size(), 0u);
}

TEST(Systems, PointInPolygonMatchesBruteForce) {
  workload::WorkloadConfig wc;
  wc.scale = 5e-5;
  const auto points = workload::generate(workload::DatasetId::kTaxi1m, wc);
  const auto blocks = workload::generate(workload::DatasetId::kNycb, wc);

  core::JoinQueryConfig query;
  query.predicate = core::JoinPredicate::kWithin;
  query.target_partitions = 64;
  core::ExecutionConfig exec;
  exec.cluster = cluster::ClusterSpec::workstation();
  exec.data_scale = 1.0 / wc.scale;
  exec.collect_pairs = true;

  const auto report = core::run_spatial_join(core::SystemKind::kSpatialSparkSim,
                                             points, blocks, query, exec);
  ASSERT_TRUE(report.success);

  std::set<core::JoinPair> got(report.pairs.begin(), report.pairs.end());
  std::set<core::JoinPair> expected;
  const auto& engine = geom::GeometryEngine::prepared();
  for (const auto& b : blocks.features()) {
    const auto bound = engine.bind(b.geometry);
    for (const auto& p : points.features()) {
      if (!b.geometry.envelope().contains(p.geometry.as_point().x,
                                          p.geometry.as_point().y)) {
        continue;
      }
      if (bound->contains(p.geometry)) expected.insert({p.id, b.id});
    }
  }
  EXPECT_EQ(got, expected);
  // Census blocks tile the extent: every point matched at least once.
  EXPECT_GE(expected.size(), points.size());
}

}  // namespace
}  // namespace sjc
