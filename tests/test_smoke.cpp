// End-to-end smoke test: the three simulated systems agree on the join
// result for both paper workloads at a tiny scale.
#include <gtest/gtest.h>

#include "core/experiments.hpp"
#include "core/spatial_join.hpp"
#include "workload/generators.hpp"

namespace sjc {
namespace {

class SmokeTest : public ::testing::TestWithParam<core::ExperimentDef> {};

TEST_P(SmokeTest, SystemsAgreeOnResult) {
  const core::ExperimentDef& def = GetParam();
  workload::WorkloadConfig wc;
  wc.scale = 1e-4;  // small but non-trivial
  const workload::Dataset left = workload::generate(def.left, wc);
  const workload::Dataset right = workload::generate(def.right, wc);

  core::JoinQueryConfig query;
  query.predicate = def.predicate;
  query.sample_rate = 0.2;

  core::ExecutionConfig exec;
  exec.cluster = cluster::ClusterSpec::workstation();
  exec.data_scale = 1.0 / wc.scale;
  exec.collect_pairs = true;

  const auto sh = core::run_spatial_join(core::SystemKind::kSpatialHadoopSim, left,
                                         right, query, exec);
  ASSERT_TRUE(sh.success) << sh.failure_reason;
  EXPECT_GT(sh.result_count, 0u);

  const auto ss = core::run_spatial_join(core::SystemKind::kSpatialSparkSim, left,
                                         right, query, exec);
  ASSERT_TRUE(ss.success) << ss.failure_reason;
  EXPECT_EQ(ss.result_count, sh.result_count);
  EXPECT_EQ(ss.result_hash, sh.result_hash);

  const auto hg = core::run_spatial_join(core::SystemKind::kHadoopGisSim, left, right,
                                         query, exec);
  ASSERT_TRUE(hg.success) << hg.failure_reason;
  EXPECT_EQ(hg.result_count, sh.result_count);
  EXPECT_EQ(hg.result_hash, sh.result_hash);
}

// The *sample* experiments are the ones every system completes on the
// workstation configuration (Table 3); the full ones intentionally break
// HadoopGIS's pipes.
INSTANTIATE_TEST_SUITE_P(PaperExperiments, SmokeTest,
                         ::testing::Values(core::sample_experiments()[0],
                                           core::sample_experiments()[1]),
                         [](const auto& info) {
                           std::string name = info.param.id;
                           for (auto& c : name) {
                             if (c == '-' || c == '.') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace sjc
