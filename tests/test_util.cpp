// Unit tests for the util module: rng, strings, csv, table, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "util/bench_io.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace sjc {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.next_u64() != b.next_u64()) ++differences;
  }
  EXPECT_GE(differences, 15);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-5.0, 3.0);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, NextBelowIsUnbiasedish) {
  Rng rng(99);
  std::array<int, 5> counts{};
  const int n = 50000;
  for (int i = 0; i < n; ++i) counts[rng.next_below(5)]++;
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 5, n / 50);  // within 10% of expectation
  }
}

TEST(Rng, NextBelowRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.next_below(0), InvalidArgument);
}

TEST(Rng, NormalHasExpectedMoments) {
  Rng rng(123);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkIsOrderIndependent) {
  Rng parent(77);
  Rng f1 = parent.fork(3);
  Rng f2 = parent.fork(9);
  // Forking again in reverse order yields the same streams.
  Rng parent2(77);
  Rng g2 = parent2.fork(9);
  Rng g1 = parent2.fork(3);
  EXPECT_EQ(f1.next_u64(), g1.next_u64());
  EXPECT_EQ(f2.next_u64(), g2.next_u64());
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(77);
  Rng f1 = parent.fork(1);
  Rng f2 = parent.fork(2);
  int diff = 0;
  for (int i = 0; i < 16; ++i) {
    if (f1.next_u64() != f2.next_u64()) ++diff;
  }
  EXPECT_GE(diff, 15);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(11);
  const auto p = rng.permutation(100);
  std::set<std::uint32_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

// ---------------------------------------------------------------------------
// strings
// ---------------------------------------------------------------------------

TEST(Strings, SplitBasic) {
  const auto parts = split("a\tb\tc", '\t');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitEmptyInput) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, JoinInvertsSplit) {
  const std::string text = "x,y,z";
  EXPECT_EQ(join(split_copy(text, ','), ','), text);
}

TEST(Strings, TrimRemovesWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, ParseDoubleRoundTrip) {
  for (const double v : {0.0, -1.5, 3.14159265358979, 1e300, -2.5e-308}) {
    EXPECT_EQ(parse_double(format_double(v)), v);
  }
}

TEST(Strings, ParseDoubleRejectsJunk) {
  EXPECT_THROW(parse_double("abc"), ParseError);
  EXPECT_THROW(parse_double("1.5x"), ParseError);
  EXPECT_THROW(parse_double(""), ParseError);
}

TEST(Strings, ParseU64) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("18446744073709551615"), 18446744073709551615ULL);
  EXPECT_THROW(parse_u64("-1"), ParseError);
  EXPECT_THROW(parse_u64("12.5"), ParseError);
}

TEST(Strings, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.0 KB");
  EXPECT_EQ(format_bytes(3ULL * 1024 * 1024 * 1024), "3.0 GB");
}

TEST(Strings, FormatSecondsUsesThousandsSeparators) {
  EXPECT_EQ(format_seconds(3327.4), "3,327");
  EXPECT_EQ(format_seconds(42.0), "42");
  EXPECT_EQ(format_seconds(1234567.0), "1,234,567");
  EXPECT_EQ(format_seconds(std::nan("")), "-");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("indexA/map", "indexA/"));
  EXPECT_FALSE(starts_with("indexA", "indexA/"));
}

// ---------------------------------------------------------------------------
// csv
// ---------------------------------------------------------------------------

TEST(Csv, PlainRowRoundTrip) {
  const std::vector<std::string> fields = {"a", "b", "c"};
  EXPECT_EQ(csv_parse_row(csv_format_row(fields)), fields);
}

TEST(Csv, QuotedFieldsRoundTrip) {
  const std::vector<std::string> fields = {"has,comma", "has\"quote", "has\nnewline"};
  EXPECT_EQ(csv_parse_row(csv_format_row(fields)), fields);
}

TEST(Csv, UnterminatedQuoteThrows) {
  EXPECT_THROW(csv_parse_row("\"oops"), ParseError);
}

TEST(Csv, WriterEnforcesArity) {
  CsvWriter writer({"x", "y"});
  EXPECT_THROW(writer.add_row({"only one"}), InvalidArgument);
}

TEST(Csv, WriterSerializesHeaderFirst) {
  CsvWriter writer({"x", "y"});
  writer.add_row({"1", "2"});
  EXPECT_EQ(writer.to_string(), "x,y\n1,2\n");
}

// ---------------------------------------------------------------------------
// table
// ---------------------------------------------------------------------------

TEST(Table, AlignsColumns) {
  TablePrinter table({"name", "v"});
  table.add_row({"a", "1"});
  table.add_row({"longer", "2"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| a      | 1 |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 2 |"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.add_row({"1"}), InvalidArgument);
}

// ---------------------------------------------------------------------------
// thread pool
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsAllIterations) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  pool.parallel_for(1000, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 999 * 1000 / 2);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw SjcError("boom");
                                 }),
               SjcError);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, NestedCallsRunInline) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(4, [&](std::size_t) {
    ThreadPool::shared().parallel_for(4, [&](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 16);
}

}  // namespace
}  // namespace sjc

namespace sjc {
namespace {

TEST(BenchIo, DisabledWithoutEnv) {
  unsetenv("SJC_CSV_DIR");
  CsvWriter csv({"a"});
  EXPECT_EQ(maybe_write_csv("t", csv), "");
}

TEST(BenchIo, WritesWhenEnabled) {
  setenv("SJC_CSV_DIR", "/tmp", 1);
  CsvWriter csv({"a", "b"});
  csv.add_row({"1", "2"});
  const std::string path = maybe_write_csv("sjc_bench_io_test", csv);
  EXPECT_EQ(path, "/tmp/sjc_bench_io_test.csv");
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n), "a,b\n1,2\n");
  unsetenv("SJC_CSV_DIR");
}

TEST(BenchIo, BadDirectoryThrows) {
  setenv("SJC_CSV_DIR", "/nonexistent-dir-xyz", 1);
  CsvWriter csv({"a"});
  EXPECT_THROW(maybe_write_csv("t", csv), SjcError);
  unsetenv("SJC_CSV_DIR");
}

// ru_maxrss unit handling: POSIX leaves the unit unspecified — Linux reports
// kilobytes, macOS bytes. Both conversions are pinned here explicitly so a
// regression on either platform convention fails on every host.
TEST(BenchIo, RssConversionPinsBothPlatformConventions) {
  // Linux convention: raw value is kilobytes.
  EXPECT_EQ(rss_bytes_from_ru_maxrss(0, /*raw_is_bytes=*/false), 0u);
  EXPECT_EQ(rss_bytes_from_ru_maxrss(1, /*raw_is_bytes=*/false), 1024u);
  EXPECT_EQ(rss_bytes_from_ru_maxrss(524288, /*raw_is_bytes=*/false),
            512u * 1024 * 1024);  // 512 MiB reported as KiB
  // macOS convention: raw value is already bytes — must pass through
  // unscaled (multiplying would inflate RSS 1024x).
  EXPECT_EQ(rss_bytes_from_ru_maxrss(0, /*raw_is_bytes=*/true), 0u);
  EXPECT_EQ(rss_bytes_from_ru_maxrss(524288, /*raw_is_bytes=*/true), 524288u);

  // The compile-time default matches this build's platform.
#if defined(__APPLE__)
  EXPECT_TRUE(kRuMaxrssIsBytes);
#else
  EXPECT_FALSE(kRuMaxrssIsBytes);
#endif

  // And the live reading is unit-sane: a process running gtest holds more
  // than 1 MiB but far less than 1 TiB resident. A kilobyte/byte mix-up
  // shifts the value by 1024x in one direction or the other, which this
  // window catches on any realistic host.
  const std::uint64_t rss = peak_rss_bytes();
  if (rss != 0) {  // 0 => platform without getrusage
    EXPECT_GT(rss, std::uint64_t{1} << 20);
    EXPECT_LT(rss, std::uint64_t{1} << 40);
  }
}

}  // namespace
}  // namespace sjc
