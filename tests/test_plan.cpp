// Skew-aware adaptive repartitioning + cost-based plan choice test suite.
//
// The load-bearing contract of hotspot refinement: splitting a cell into
// children that tile it exactly cannot change which pairs survive — the
// reference-point dedup picks the one cell containing the point either way
// — so a run with repartitioning on must produce a survivor pair set
// bit-identical to the static-scheme run, with refine.* counters unchanged
// (the accept filter runs before refinement counting in run_local_join)
// and the shuffle.assigned == records + filtered invariant intact. The
// suite checks the monitor/refiner units, the cost model's shape, both
// Table-2 experiments across all three systems, and the serving-layer
// per-tenant plan choice.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "plan/cost_model.hpp"
#include "plan/partition_refiner.hpp"
#include "plan/skew_monitor.hpp"
#include "serving/query_service.hpp"
#include "serving/resident_catalog.hpp"
#include "systems/hadoopgis/hadoop_gis.hpp"
#include "systems/spatialhadoop/spatial_hadoop.hpp"
#include "systems/spatialspark/spatial_spark.hpp"
#include "workload/generators.hpp"

namespace sjc {
namespace {

// ---------------------------------------------------------------------------
// SkewMonitor
// ---------------------------------------------------------------------------

std::vector<plan::CellLoad> loads_of(std::initializer_list<std::uint64_t> records) {
  std::vector<plan::CellLoad> loads;
  for (const auto r : records) loads.push_back({r, r * 10});
  return loads;
}

TEST(SkewMonitor, FlagsCellsAboveFactorTimesMedian) {
  plan::SkewPolicy policy;
  policy.hotspot_factor = 4.0;
  policy.min_cell_records = 10;
  const plan::SkewMonitor monitor(policy);

  // Non-empty loads {100, 100, 100, 100, 1000}: median 100 (nearest rank),
  // threshold max(400, 10) = 400 -> only the 1000-cell is hot. Empty cells
  // must not drag the median down.
  const auto report =
      monitor.analyze(loads_of({100, 0, 100, 100, 0, 0, 100, 1000}));
  EXPECT_DOUBLE_EQ(report.median_records, 100.0);
  EXPECT_EQ(report.max_records, 1000u);
  EXPECT_DOUBLE_EQ(report.max_over_median, 10.0);
  ASSERT_EQ(report.hot_cells.size(), 1u);
  EXPECT_EQ(report.hot_cells[0], 7u);
}

TEST(SkewMonitor, MinCellRecordsFloorsTheThreshold) {
  plan::SkewPolicy policy;
  policy.hotspot_factor = 2.0;
  policy.min_cell_records = 500;
  const plan::SkewMonitor monitor(policy);
  // 40 > 2 x median(=4) but below the absolute floor: never split a
  // near-empty cell no matter how skewed the ratio looks.
  EXPECT_TRUE(monitor.analyze(loads_of({4, 4, 4, 40})).hot_cells.empty());
}

TEST(SkewMonitor, WorstOffendersFirstAndCapped) {
  plan::SkewPolicy policy;
  policy.hotspot_factor = 1.5;
  policy.min_cell_records = 1;
  policy.max_splits_per_round = 2;
  const plan::SkewMonitor monitor(policy);
  // Median of {10,10,10,10,300,400,500} is 10; three cells exceed 15, but
  // only the two worst are kept, in descending-load order.
  const auto report = monitor.analyze(loads_of({10, 300, 10, 500, 10, 400, 10}));
  ASSERT_EQ(report.hot_cells.size(), 2u);
  EXPECT_EQ(report.hot_cells[0], 3u);
  EXPECT_EQ(report.hot_cells[1], 5u);
}

TEST(SkewMonitor, AllEmptyIsQuiet) {
  const auto report = plan::SkewMonitor{}.analyze(loads_of({0, 0, 0}));
  EXPECT_TRUE(report.hot_cells.empty());
  EXPECT_DOUBLE_EQ(report.median_records, 0.0);
  EXPECT_DOUBLE_EQ(report.max_over_median, 0.0);
}

TEST(SkewMonitor, PhaseSkewRatio) {
  std::vector<trace::PhaseSkew> rows(2);
  rows[0].phase = "local-join";
  rows[0].p50_s = 2.0;
  rows[0].max_s = 9.0;
  rows[1].phase = "parse";
  rows[1].p50_s = 0.0;
  rows[1].max_s = 1.0;
  EXPECT_DOUBLE_EQ(plan::phase_skew_ratio(rows, "local-join"), 4.5);
  EXPECT_DOUBLE_EQ(plan::phase_skew_ratio(rows, "parse"), 0.0);  // median 0
  EXPECT_DOUBLE_EQ(plan::phase_skew_ratio(rows, "absent"), 0.0);
}

// ---------------------------------------------------------------------------
// PartitionRefiner: split geometry + refine loop
// ---------------------------------------------------------------------------

/// Children must tile the parent exactly: cover every probe point, never
/// overlap interiorly, and preserve total area.
void expect_tiles_parent(const geom::Envelope& parent,
                         const std::vector<geom::Envelope>& children,
                         const std::string& tag) {
  double area = 0.0;
  for (const auto& c : children) {
    area += c.width() * c.height();
    EXPECT_GE(c.min_x(), parent.min_x()) << tag;
    EXPECT_GE(c.min_y(), parent.min_y()) << tag;
    EXPECT_LE(c.max_x(), parent.max_x()) << tag;
    EXPECT_LE(c.max_y(), parent.max_y()) << tag;
  }
  EXPECT_NEAR(area, parent.width() * parent.height(), 1e-9) << tag;
  // Interior-point coverage: every probe lands in exactly one child whose
  // interior contains it (boundary points may touch two — the same
  // situation the base grid already has, resolved by min-id dedup).
  for (double fx : {0.1, 0.4, 0.6, 0.9}) {
    for (double fy : {0.1, 0.4, 0.6, 0.9}) {
      const double x = parent.min_x() + fx * parent.width();
      const double y = parent.min_y() + fy * parent.height();
      int hits = 0;
      for (const auto& c : children) {
        if (x >= c.min_x() && x <= c.max_x() && y >= c.min_y() && y <= c.max_y()) {
          ++hits;
        }
      }
      EXPECT_GE(hits, 1) << tag << " uncovered point";
    }
  }
}

TEST(PartitionRefiner, SplitCellTilesParent) {
  const geom::Envelope cell(10.0, 20.0, 30.0, 28.0);
  const auto quad = plan::PartitionRefiner::split_cell(
      cell, partition::PartitionerKind::kFixedGrid);
  ASSERT_EQ(quad.size(), 4u);
  expect_tiles_parent(cell, quad, "quad");

  const auto halves =
      plan::PartitionRefiner::split_cell(cell, partition::PartitionerKind::kStr);
  ASSERT_EQ(halves.size(), 2u);
  expect_tiles_parent(cell, halves, "str-halves");
  // STR/BSP node-split halves the longer axis (x here: 20 wide vs 8 tall).
  EXPECT_DOUBLE_EQ(halves[0].max_x(), 20.0);
  EXPECT_DOUBLE_EQ(halves[1].min_x(), 20.0);

  // A zero-width sliver can only split in y — for the grid family too.
  const geom::Envelope sliver(5.0, 0.0, 5.0, 10.0);
  const auto sliver_children = plan::PartitionRefiner::split_cell(
      sliver, partition::PartitionerKind::kFixedGrid);
  ASSERT_EQ(sliver_children.size(), 2u);
  EXPECT_DOUBLE_EQ(sliver_children[0].max_y(), 5.0);

  // A point cell cannot split at all.
  const geom::Envelope point(1.0, 1.0, 1.0, 1.0);
  EXPECT_EQ(plan::PartitionRefiner::split_cell(point,
                                               partition::PartitionerKind::kQuadtree)
                .size(),
            1u);
}

TEST(PartitionRefiner, RefineSplitsHotCellsAndConservesMigration) {
  // 2x2 grid over [0,100]^2; cell 0 carries 900 of the 960 records.
  const geom::Envelope extent(0.0, 0.0, 100.0, 100.0);
  const std::vector<geom::Envelope> cells = {
      {0, 0, 50, 50}, {50, 0, 100, 50}, {0, 50, 50, 100}, {50, 50, 100, 100}};
  const partition::PartitionScheme scheme(cells, extent);

  plan::SkewPolicy policy;
  policy.hotspot_factor = 4.0;
  policy.min_cell_records = 1;
  policy.max_rounds = 1;
  const plan::PartitionRefiner refiner(partition::PartitionerKind::kFixedGrid,
                                       policy);

  // Probe: a point mass at (10,10) plus 20 records per cell elsewhere.
  int probes = 0;
  const auto probe = [&probes](const partition::PartitionScheme& s) {
    ++probes;
    std::vector<plan::CellLoad> loads(s.cell_count());
    std::vector<std::uint32_t> pids;
    const auto add = [&](double x, double y, std::uint64_t n) {
      s.assign_into(geom::Envelope(x, y, x, y), pids);
      for (const auto pid : pids) {
        loads[pid].records += n;
        loads[pid].bytes += n * 8;
      }
    };
    add(10, 10, 900);
    add(75, 25, 20);
    add(25, 75, 20);
    add(75, 75, 20);
    return loads;
  };

  const plan::RefineResult result = refiner.refine(scheme, probe);
  EXPECT_EQ(probes, 1);
  EXPECT_EQ(result.rounds, 1u);
  EXPECT_EQ(result.splits, 1u);
  EXPECT_TRUE(result.changed());
  // Quad split: 4 cells -> 7 (cell 0 replaced by 4 children).
  EXPECT_EQ(result.scheme.cell_count(), 7u);
  // Migration counters are exactly the load resident in the split cell.
  EXPECT_EQ(result.migrated_records, 900u);
  EXPECT_EQ(result.migrated_bytes, 900u * 8);
  // Parent mapping: slot 0 and the three appended children map to 0, the
  // untouched cells keep identity.
  ASSERT_EQ(result.parent.size(), 7u);
  EXPECT_EQ(result.parent[0], 0u);
  EXPECT_EQ(result.parent[1], 1u);
  EXPECT_EQ(result.parent[2], 2u);
  EXPECT_EQ(result.parent[3], 3u);
  EXPECT_EQ(result.parent[4], 0u);
  EXPECT_EQ(result.parent[5], 0u);
  EXPECT_EQ(result.parent[6], 0u);
  // The children tile the old cell 0.
  expect_tiles_parent(cells[0],
                      {result.scheme.cells()[0], result.scheme.cells()[4],
                       result.scheme.cells()[5], result.scheme.cells()[6]},
                      "refined");

  // With two rounds the point-mass child is still hot and splits again.
  policy.max_rounds = 2;
  const plan::RefineResult deeper =
      plan::PartitionRefiner(partition::PartitionerKind::kFixedGrid, policy)
          .refine(scheme, probe);
  EXPECT_EQ(deeper.rounds, 2u);
  EXPECT_EQ(deeper.splits, 2u);
  EXPECT_EQ(deeper.scheme.cell_count(), 10u);
  // Round 2 migrated the 900-record mass again out of the hot child.
  EXPECT_EQ(deeper.migrated_records, 1800u);

  // A balanced probe refines nothing and stops after one probe round.
  const auto balanced = [](const partition::PartitionScheme& s) {
    return std::vector<plan::CellLoad>(s.cell_count(), plan::CellLoad{50, 400});
  };
  const plan::RefineResult quiet =
      plan::PartitionRefiner(partition::PartitionerKind::kFixedGrid, policy)
          .refine(scheme, balanced);
  EXPECT_EQ(quiet.rounds, 1u);
  EXPECT_FALSE(quiet.changed());
  EXPECT_EQ(quiet.scheme.cell_count(), 4u);
  EXPECT_EQ(quiet.migrated_records, 0u);
}

TEST(PartitionRefiner, CountersRoundTrip) {
  const geom::Envelope extent(0.0, 0.0, 10.0, 10.0);
  plan::RefineResult result{partition::PartitionScheme({extent}, extent),
                            {0},
                            /*rounds=*/2,
                            /*splits=*/3,
                            /*migrated_records=*/111,
                            /*migrated_bytes=*/2222};
  cluster::Counters counters;
  plan::record_repartition_counters(result, counters);
  EXPECT_EQ(counters.get("repartition.rounds"), 2u);
  EXPECT_EQ(counters.get("repartition.splits"), 3u);
  EXPECT_EQ(counters.get("repartition.cells"), 1u);
  EXPECT_EQ(counters.get("repartition.migrated_records"), 111u);
  EXPECT_EQ(counters.get("repartition.migrated_bytes"), 2222u);
}

// ---------------------------------------------------------------------------
// JoinCostModel
// ---------------------------------------------------------------------------

plan::PlanInputs base_inputs() {
  plan::PlanInputs in;
  in.left_records = 1'000'000;
  in.right_records = 1'000;
  in.left_bytes = 100ull << 20;
  in.right_bytes = 1ull << 20;
  in.cluster = cluster::ClusterSpec::ec2(10);
  return in;
}

TEST(JoinCostModel, SmallRightSideBroadcasts) {
  const auto decision = plan::choose_plan(base_inputs());
  EXPECT_FALSE(decision.fallback);
  EXPECT_TRUE(decision.broadcast_feasible);
  // A ~1 MB right side against a ~250 MB (with row overhead) shuffled left:
  // shipping the small table to 10 nodes is cheaper than shuffling the big
  // side across the cluster, so broadcast must win.
  EXPECT_EQ(decision.chosen, plan::PlanKind::kBroadcastJoin);
  EXPECT_LT(decision.broadcast_seconds, decision.partitioned_seconds);
  EXPECT_DOUBLE_EQ(decision.predicted_seconds, decision.broadcast_seconds);
}

TEST(JoinCostModel, OversizedRightSideIsInfeasibleToBroadcast) {
  auto in = base_inputs();
  // g2.2xlarge keeps 15 GB per node; a ~15 GB broadcast table (12 GiB of
  // geometry plus 3 GB of row overhead) blows the 80% heap budget and the
  // model must fall back to the partitioned join (the paper's Spark
  // broadcast OOM).
  in.right_records = 20'000'000;
  in.right_bytes = 12ull << 30;
  const auto decision = plan::choose_plan(in);
  EXPECT_FALSE(decision.broadcast_feasible);
  EXPECT_TRUE(std::isinf(decision.broadcast_seconds));
  EXPECT_EQ(decision.chosen, plan::PlanKind::kPartitionedJoin);
}

TEST(JoinCostModel, MonotoneInInputSize) {
  auto in = base_inputs();
  double prev_partitioned = 0.0;
  double prev_broadcast = 0.0;
  for (const std::uint64_t mult : {1ull, 4ull, 16ull, 64ull}) {
    auto scaled = in;
    scaled.left_records = in.left_records * mult;
    scaled.left_bytes = in.left_bytes * mult;
    scaled.right_records = in.right_records * mult;
    scaled.right_bytes = in.right_bytes * mult;
    const auto decision = plan::choose_plan(scaled);
    EXPECT_GT(decision.partitioned_seconds, prev_partitioned) << mult;
    if (decision.broadcast_feasible) {
      EXPECT_GT(decision.broadcast_seconds, prev_broadcast) << mult;
      prev_broadcast = decision.broadcast_seconds;
    }
    prev_partitioned = decision.partitioned_seconds;
  }
}

TEST(JoinCostModel, ReplicationAndSelectivityMoveThePartitionedCost) {
  auto in = base_inputs();
  const double baseline = plan::choose_plan(in).partitioned_seconds;
  in.replication_factor = 3.0;
  const double replicated = plan::choose_plan(in).partitioned_seconds;
  EXPECT_GT(replicated, baseline);
  in.filter_selectivity = 0.1;
  const double filtered = plan::choose_plan(in).partitioned_seconds;
  EXPECT_LT(filtered, replicated);
}

TEST(JoinCostModel, DegenerateInputsFallBackSafely) {
  plan::PlanInputs empty;
  empty.cluster = cluster::ClusterSpec::ec2(6);
  const auto decision = plan::choose_plan(empty);  // no sampler stats, no data
  EXPECT_TRUE(decision.fallback);
  EXPECT_EQ(decision.chosen, plan::PlanKind::kPartitionedJoin);

  cluster::Counters counters;
  plan::record_plan_counters(decision, counters);
  EXPECT_EQ(counters.get("plan.chosen"), 1u);
  EXPECT_EQ(counters.get("plan.fallback"), 1u);
}

TEST(JoinCostModel, CountersCarryTheDecision) {
  const auto decision = plan::choose_plan(base_inputs());
  cluster::Counters counters;
  plan::record_plan_counters(decision, counters);
  plan::record_plan_actual(1.234, counters);
  EXPECT_EQ(counters.get("plan.chosen"),
            static_cast<std::uint64_t>(decision.chosen));
  EXPECT_EQ(counters.get("plan.predicted_cost"),
            static_cast<std::uint64_t>(decision.predicted_seconds * 1e3));
  EXPECT_GT(counters.get("plan.predicted_partitioned"),
            counters.get("plan.predicted_broadcast"));
  EXPECT_EQ(counters.get("plan.actual_cost"), 1234u);
  EXPECT_EQ(counters.get("plan.fallback"), 0u);
}

// ---------------------------------------------------------------------------
// Full systems: repartition on/off bit-identical survivor pairs
// ---------------------------------------------------------------------------

struct Bench {
  workload::Dataset left;
  workload::Dataset right;
  core::JoinQueryConfig query;
  core::ExecutionConfig exec;
  std::string name;
};

Bench make_bench(workload::DatasetId a, workload::DatasetId b, double scale,
                 core::JoinPredicate predicate, const std::string& name) {
  workload::WorkloadConfig wc;
  wc.scale = scale;
  Bench bench{workload::generate(a, wc), workload::generate(b, wc), {}, {}, name};
  bench.query.predicate = predicate;
  bench.exec.cluster = cluster::ClusterSpec::workstation();
  bench.exec.data_scale = 1.0 / wc.scale;
  return bench;
}

/// Aggressive policy so the small test datasets actually trigger splits.
plan::SkewPolicy eager_policy() {
  plan::SkewPolicy policy;
  policy.hotspot_factor = 1.5;
  policy.min_cell_records = 4;
  policy.max_rounds = 2;
  return policy;
}

/// The split-soundness contract, checked between a static-scheme run and an
/// adaptive run of the same system: identical pair sets and refinement
/// workload, self-consistent shuffle counters, and the repartition.* block
/// present exactly on the adaptive side.
void expect_repartition_neutral(const core::RunReport& off,
                                const core::RunReport& on,
                                const std::string& tag) {
  EXPECT_EQ(off.counters.get("repartition.rounds"), 0u) << tag;
  ASSERT_EQ(off.success, on.success) << tag << ": " << on.failure_reason;
  // A run that dies before the refinement step (HadoopGIS overflows its
  // streaming pipes on the line-join ingest regardless of the scheme) has
  // nothing to report; the neutrality claim below still binds.
  if (!off.success) return;
  EXPECT_GE(on.counters.get("repartition.rounds"), 1u) << tag;
  EXPECT_GE(on.counters.get("repartition.cells"), 1u) << tag;

  // Bit-identical survivor pair sets and refinement workload (the accept
  // dedup runs before refinement counting, so refine.* is scheme-free).
  EXPECT_EQ(off.result_count, on.result_count) << tag;
  EXPECT_EQ(off.result_hash, on.result_hash) << tag;
  for (const char* key :
       {"refine.candidates", "refine.exact_tests", "refine.early_accepts",
        "refine.early_rejects"}) {
    EXPECT_EQ(off.counters.get(key), on.counters.get(key)) << tag << " " << key;
  }
  // The shuffle-filter invariant must survive the refined scheme. (The
  // shuffle *totals* legitimately differ from the static run: more cells
  // means different boundary duplication and filter decisions.)
  const std::uint64_t assigned = on.counters.get("shuffle.assigned_records");
  if (assigned != 0) {
    EXPECT_EQ(assigned, on.counters.get("shuffle.records") +
                            on.counters.get("shuffle.filtered_records"))
        << tag;
  }
}

TEST(RepartitionSystems, BitIdenticalSurvivorPairs) {
  const Bench benches[] = {
      make_bench(workload::DatasetId::kTaxi1m, workload::DatasetId::kNycb, 2e-4,
                 core::JoinPredicate::kWithin, "taxi-nycb"),
      make_bench(workload::DatasetId::kEdges, workload::DatasetId::kLinearwater,
                 2e-5, core::JoinPredicate::kIntersects, "edges-linearwater"),
  };
  // FixedGrid exercises the quad-split family on the skewed taxi workload;
  // STR exercises the node-split family on the line join.
  const partition::PartitionerKind kinds[] = {partition::PartitionerKind::kFixedGrid,
                                              partition::PartitionerKind::kStr};
  for (std::size_t bi = 0; bi < 2; ++bi) {
    const Bench& bench = benches[bi];
    core::JoinQueryConfig query = bench.query;
    query.partitioner = kinds[bi];
    const std::string base =
        bench.name + "/" + partition::partitioner_kind_name(kinds[bi]);
    {
      systems::HadoopGisConfig off_cfg;
      systems::HadoopGisConfig on_cfg;
      on_cfg.policy.repartition = true;
      on_cfg.policy.skew = eager_policy();
      expect_repartition_neutral(
          systems::run_hadoop_gis(bench.left, bench.right, query, bench.exec,
                                  off_cfg),
          systems::run_hadoop_gis(bench.left, bench.right, query, bench.exec,
                                  on_cfg),
          base + "/hadoopgis");
    }
    {
      systems::SpatialHadoopConfig off_cfg;
      systems::SpatialHadoopConfig on_cfg;
      on_cfg.policy.repartition = true;
      on_cfg.policy.skew = eager_policy();
      expect_repartition_neutral(
          systems::run_spatial_hadoop(bench.left, bench.right, query, bench.exec,
                                      off_cfg),
          systems::run_spatial_hadoop(bench.left, bench.right, query, bench.exec,
                                      on_cfg),
          base + "/spatialhadoop");
    }
    {
      systems::SpatialSparkConfig off_cfg;
      systems::SpatialSparkConfig on_cfg;
      on_cfg.policy.repartition = true;
      on_cfg.policy.skew = eager_policy();
      expect_repartition_neutral(
          systems::run_spatial_spark(bench.left, bench.right, query, bench.exec,
                                     off_cfg),
          systems::run_spatial_spark(bench.left, bench.right, query, bench.exec,
                                     on_cfg),
          base + "/spatialspark");
    }
  }
}

TEST(RepartitionSystems, SkewedGridActuallySplits) {
  // The taxi workload has a Gaussian urban hotspot; a fixed grid (which,
  // unlike STR, does not balance sample counts) must produce hot cells the
  // refiner then splits. This pins "adaptive repartitioning did something"
  // independent of the neutrality test.
  Bench bench = make_bench(workload::DatasetId::kTaxi1m, workload::DatasetId::kNycb,
                           2e-4, core::JoinPredicate::kWithin, "taxi-skew");
  bench.query.partitioner = partition::PartitionerKind::kFixedGrid;
  systems::SpatialSparkConfig cfg;
  cfg.policy.repartition = true;
  cfg.policy.skew = eager_policy();
  const auto report =
      systems::run_spatial_spark(bench.left, bench.right, bench.query, bench.exec, cfg);
  ASSERT_TRUE(report.success) << report.failure_reason;
  EXPECT_GE(report.counters.get("repartition.rounds"), 1u);
  EXPECT_GT(report.counters.get("repartition.splits"), 0u);
  EXPECT_GT(report.counters.get("repartition.migrated_records"), 0u);
  EXPECT_GT(report.counters.get("repartition.migrated_bytes"), 0u);
}

TEST(RepartitionSystems, ResidentPathCarriesTheRefinedScheme) {
  // capture-on-build must store the *refined* scheme: a resident query under
  // an adaptive build stays bit-identical to the adaptive cold run.
  Bench bench = make_bench(workload::DatasetId::kTaxi1m, workload::DatasetId::kNycb,
                           2e-4, core::JoinPredicate::kWithin, "taxi-resident");
  bench.query.partitioner = partition::PartitionerKind::kFixedGrid;
  bench.exec.collect_pairs = true;

  serving::ResidentEntryConfig config;
  config.system = core::SystemKind::kSpatialSparkSim;
  config.build_query = bench.query;
  config.exec = bench.exec;
  config.spatial_spark.policy.repartition = true;
  config.spatial_spark.policy.skew = eager_policy();

  const auto cold = systems::run_spatial_spark(bench.left, bench.right, bench.query,
                                               bench.exec, config.spatial_spark);
  ASSERT_TRUE(cold.success) << cold.failure_reason;
  EXPECT_GT(cold.counters.get("repartition.splits"), 0u);

  serving::ResidentCatalog catalog;
  const auto entry = catalog.install("taxi", bench.left, bench.right, config);
  const auto resident = entry->run_join(bench.query);
  ASSERT_TRUE(resident.success) << resident.failure_reason;
  EXPECT_EQ(cold.result_count, resident.result_count);
  EXPECT_EQ(cold.result_hash, resident.result_hash);
}

// ---------------------------------------------------------------------------
// Serving: per-tenant cost-based plan choice
// ---------------------------------------------------------------------------

TEST(PlanServing, CostBasedPlanPerTenant) {
  Bench bench = make_bench(workload::DatasetId::kTaxi1m, workload::DatasetId::kNycb,
                           2e-4, core::JoinPredicate::kWithin, "taxi-serving");
  serving::ResidentEntryConfig config;
  config.system = core::SystemKind::kSpatialSparkSim;
  config.build_query = bench.query;
  config.exec = bench.exec;
  config.spatial_spark.policy.cost_based_plan = true;

  serving::ResidentCatalog catalog;
  catalog.install("taxi-nycb", bench.left, bench.right, config);
  serving::QueryServiceConfig sc;
  sc.workers = 1;
  serving::QueryService service(catalog, sc);

  serving::Query query;
  query.kind = serving::QueryKind::kSpatialJoin;
  query.entry = "taxi-nycb";
  query.join = bench.query;

  std::vector<std::future<serving::QueryResult>> futures;
  for (int i = 0; i < 3; ++i) {
    auto sub = service.submit("t0", query);
    ASSERT_TRUE(sub.status.ok()) << sub.status.to_string();
    futures.push_back(std::move(sub.result));
  }
  std::uint64_t chosen = 0;
  for (auto& f : futures) {
    const auto result = f.get();
    ASSERT_TRUE(result.status.ok()) << result.status.to_string();
    chosen = result.report.counters.get("plan.chosen");
    // A decision was recorded, predictions accompany it, and the realized
    // cost is measured for misprediction visibility.
    EXPECT_TRUE(chosen == 1 || chosen == 2) << chosen;
    EXPECT_GT(result.report.counters.get("plan.predicted_partitioned"), 0u);
    EXPECT_EQ(result.report.counters.get("plan.fallback"), 0u);
  }
  service.drain();

  const auto stats = service.tenant_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].completed, 3u);
  // Every completed join contributed its plan to the per-tenant tally.
  EXPECT_EQ(stats[0].plan_broadcast + stats[0].plan_partitioned, 3u);
  if (chosen == 2) {
    EXPECT_EQ(stats[0].plan_broadcast, 3u);
  } else {
    EXPECT_EQ(stats[0].plan_partitioned, 3u);
  }
}

}  // namespace
}  // namespace sjc
