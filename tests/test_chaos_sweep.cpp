// Randomized chaos sweep over the job lifecycle: hundreds of seeded random
// fault plans against both Table-2 experiments on all three systems.
//
// Contract (systems/chaos.hpp): every run either survives with a pair set
// bit-identical to the fault-free ground truth or fails with a structured
// Status; either way the commit ledger, retry budget, node-quarantine and
// input-quarantine accounting must balance.
//
// Knobs:
//   SJC_CHAOS_PLANS    plans per (experiment, system) combo (default 34,
//                      -> 204 runs across 2 experiments x 3 systems).
//   SJC_CHAOS_SEED     sweep seed (default 20260808).
//   SJC_CHAOS_REPARTITION_PLANS
//                      plans per combo for the adaptive-repartitioning leg
//                      (default 8).
//   SJC_CHAOS_ARTIFACT path for the failing-plan dump (default
//                      chaos_failures.txt in the working directory); every
//                      violation appends cluster::describe(plan), so a CI
//                      failure reproduces from the artifact alone.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/fault_injector.hpp"
#include "core/experiments.hpp"
#include "core/spatial_join.hpp"
#include "plan/exec_policy.hpp"
#include "systems/chaos.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"

namespace sjc {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

struct ChaosExperiment {
  std::string id;
  workload::Dataset left;
  workload::Dataset right;
  core::JoinQueryConfig query;
  core::RunReport truth;  // fault-free ground truth (SpatialHadoop analog)
};

struct ChaosBench {
  core::ExecutionConfig exec;
  std::vector<ChaosExperiment> experiments;

  static const ChaosBench& instance() {
    static const ChaosBench bench = [] {
      ChaosBench b;
      // EC2-10 rather than the single-node workstation: node blacklisting
      // and datanode loss only bite on a multi-node cluster, and the paper's
      // SpatialSpark analog survives there (it OOMs on EC2-8/EC2-6).
      b.exec.cluster = cluster::ClusterSpec::ec2(10);
      workload::WorkloadConfig wc;
      wc.scale = 2e-4;
      b.exec.data_scale = 1.0 / wc.scale;
      for (const auto& def : core::full_experiments()) {
        ChaosExperiment e;
        e.id = def.id;
        e.left = workload::generate(def.left, wc);
        e.right = workload::generate(def.right, wc);
        e.query.predicate = def.predicate;
        e.truth = systems::run_under_plan(core::SystemKind::kSpatialHadoopSim,
                                          e.left, e.right, e.query, b.exec,
                                          cluster::FaultPlan{});
        b.experiments.push_back(std::move(e));
      }
      return b;
    }();
    return bench;
  }
};

void dump_failure(const std::string& context, const cluster::FaultPlan& plan,
                  const std::vector<std::string>& violations) {
  const char* env = std::getenv("SJC_CHAOS_ARTIFACT");
  const std::string path =
      (env != nullptr && *env != '\0') ? env : "chaos_failures.txt";
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return;
  std::fprintf(f, "%s\n  %s\n", context.c_str(), cluster::describe(plan).c_str());
  for (const auto& v : violations) std::fprintf(f, "  violation: %s\n", v.c_str());
  std::fclose(f);
}

TEST(ChaosSweep, RandomizedFaultPlansUpholdLifecycleContract) {
  const auto& b = ChaosBench::instance();
  const std::uint64_t plans_per_combo = env_u64("SJC_CHAOS_PLANS", 34);
  Rng rng(env_u64("SJC_CHAOS_SEED", 20260808));

  for (const auto& e : b.experiments) {
    ASSERT_TRUE(e.truth.success) << e.truth.failure_reason;
  }

  std::uint64_t runs = 0;
  std::uint64_t survived = 0;
  std::uint64_t failed_clean = 0;
  for (const auto& e : b.experiments) {
    for (const auto system :
         {core::SystemKind::kHadoopGisSim, core::SystemKind::kSpatialHadoopSim,
          core::SystemKind::kSpatialSparkSim}) {
      for (std::uint64_t k = 0; k < plans_per_combo; ++k) {
        const cluster::FaultPlan plan =
            systems::random_fault_plan(rng, b.exec.cluster.node_count);
        const std::string context = e.id + " / " +
                                    core::system_kind_name(system) + " / plan " +
                                    std::to_string(k);
        core::RunReport report;
        try {
          report = systems::run_under_plan(system, e.left, e.right, e.query,
                                           b.exec, plan);
        } catch (const std::exception& ex) {
          dump_failure(context, plan, {std::string("escaped exception: ") + ex.what()});
          FAIL() << context << ": escaped exception: " << ex.what() << "\n  "
                 << cluster::describe(plan);
        }
        const auto violations = systems::chaos_violations(report, e.truth, plan);
        if (!violations.empty()) {
          dump_failure(context, plan, violations);
          for (const auto& v : violations) {
            ADD_FAILURE() << context << ": " << v << "\n  "
                          << cluster::describe(plan);
          }
        }
        ++runs;
        report.success ? ++survived : ++failed_clean;
      }
    }
  }
  // The sweep is only meaningful if both terminal states actually occur.
  EXPECT_EQ(runs, 2 * 3 * plans_per_combo);
  EXPECT_GT(survived, 0u);
  EXPECT_GT(failed_clean, 0u);
  std::printf("chaos sweep: %llu runs, %llu survived, %llu failed cleanly\n",
              static_cast<unsigned long long>(runs),
              static_cast<unsigned long long>(survived),
              static_cast<unsigned long long>(failed_clean));
}

// Repartition leg: the same lifecycle contract, with skew-aware adaptive
// repartitioning switched on under every fault plan. Split soundness makes
// the fault-free *static-scheme* truth remain the ground truth — a
// surviving adaptive run must still be bit-identical to it — and the
// commit-ledger/retry/quarantine invariants must hold while shuffle
// buckets are being re-routed mid-job. Runs per combo come from
// SJC_CHAOS_REPARTITION_PLANS (default 8; the leg rides along in the
// sanitized CI chaos job via the shared binary).
TEST(ChaosSweep, RepartitionedRunsUpholdLifecycleContract) {
  const auto& b = ChaosBench::instance();
  const std::uint64_t plans_per_combo =
      env_u64("SJC_CHAOS_REPARTITION_PLANS", 8);
  Rng rng(env_u64("SJC_CHAOS_SEED", 20260808) ^ 0x5e57ULL);

  plan::ExecPolicy policy;
  policy.repartition = true;
  // Aggressive thresholds so the scaled-down chaos datasets actually split.
  policy.skew.hotspot_factor = 1.5;
  policy.skew.min_cell_records = 4;
  policy.skew.max_rounds = 2;

  std::uint64_t repartitioned_survivors = 0;
  for (const auto& e : b.experiments) {
    for (const auto system :
         {core::SystemKind::kHadoopGisSim, core::SystemKind::kSpatialHadoopSim,
          core::SystemKind::kSpatialSparkSim}) {
      for (std::uint64_t k = 0; k < plans_per_combo; ++k) {
        const cluster::FaultPlan plan =
            systems::random_fault_plan(rng, b.exec.cluster.node_count);
        const std::string context = e.id + " / " +
                                    core::system_kind_name(system) +
                                    " / repartition plan " + std::to_string(k);
        core::RunReport report;
        try {
          report = systems::run_under_plan(system, e.left, e.right, e.query,
                                           b.exec, plan, policy);
        } catch (const std::exception& ex) {
          dump_failure(context, plan, {std::string("escaped exception: ") + ex.what()});
          FAIL() << context << ": escaped exception: " << ex.what() << "\n  "
                 << cluster::describe(plan);
        }
        const auto violations = systems::chaos_violations(report, e.truth, plan);
        if (!violations.empty()) {
          dump_failure(context, plan, violations);
          for (const auto& v : violations) {
            ADD_FAILURE() << context << ": " << v << "\n  "
                          << cluster::describe(plan);
          }
        }
        if (report.success && report.counters.get("repartition.rounds") > 0) {
          ++repartitioned_survivors;
        }
      }
    }
  }
  // The leg is only meaningful if some survivor actually refined its scheme.
  EXPECT_GT(repartitioned_survivors, 0u);
}

// A fault-free plan through the chaos path reproduces the default dispatch
// path exactly — the harness itself does not perturb outcomes. Note that
// "outcome" includes the paper's seed failures: HadoopGIS legitimately dies
// with a broken pipe on the full-dataset experiments (Table 2's dashes),
// and then it must die identically and with a structured Status here.
TEST(ChaosSweep, TrivialPlanMatchesDirectRunOnAllSystems) {
  const auto& b = ChaosBench::instance();
  for (const auto& e : b.experiments) {
    for (const auto system :
         {core::SystemKind::kHadoopGisSim, core::SystemKind::kSpatialHadoopSim,
          core::SystemKind::kSpatialSparkSim}) {
      const auto direct =
          core::run_spatial_join(system, e.left, e.right, e.query, b.exec);
      const auto report = systems::run_under_plan(system, e.left, e.right,
                                                  e.query, b.exec,
                                                  cluster::FaultPlan{});
      EXPECT_EQ(direct.success, report.success) << e.id;
      EXPECT_EQ(report.success, report.status.ok()) << report.status.to_string();
      if (report.success) {
        EXPECT_EQ(e.truth.result_hash, report.result_hash) << e.id;
        EXPECT_EQ(e.truth.result_count, report.result_count) << e.id;
      } else {
        EXPECT_EQ(direct.failure_reason, report.failure_reason) << e.id;
        EXPECT_FALSE(report.status.to_string().empty());
      }
    }
  }
}

}  // namespace
}  // namespace sjc
